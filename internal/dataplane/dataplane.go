// Package dataplane implements the per-device forwarding engine: longest-
// prefix-match over the FIB, 5-tuple ECMP hashing, ACL evaluation and TTL
// handling. CrystalNet uses it to answer "where would this packet go" for
// the InjectPackets/PullPackets telemetry APIs (§3.3) — the paper
// explicitly does not model data-plane performance, only forwarding
// behaviour, and neither does this engine.
//
// DESIGN.md §1 records the forwarding-only substitution; §2 places the
// engine in the inventory.
package dataplane

import (
	"fmt"
	"hash/fnv"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
)

// ACLAction is an ACL rule verdict.
type ACLAction uint8

// ACL actions. Deny is the zero value so that an ACL's unset DefaultAction
// is the conventional implicit deny of production routers (a nil *ACL still
// permits — no ACL bound).
const (
	ACLDeny ACLAction = iota
	ACLPermit
)

// ACLRule matches packets by 5-tuple fields; nil/zero fields are wildcards.
type ACLRule struct {
	Action   ACLAction
	Src, Dst *netpkt.Prefix
	Proto    uint8 // 0 = any
	DstPort  uint16
	SrcPort  uint16
}

// Matches reports whether the rule matches the packet.
func (r *ACLRule) Matches(m *PacketMeta) bool {
	if r.Src != nil && !r.Src.Contains(m.Src) {
		return false
	}
	if r.Dst != nil && !r.Dst.Contains(m.Dst) {
		return false
	}
	if r.Proto != 0 && r.Proto != m.Proto {
		return false
	}
	if r.DstPort != 0 && r.DstPort != m.DstPort {
		return false
	}
	if r.SrcPort != 0 && r.SrcPort != m.SrcPort {
		return false
	}
	return true
}

// ACL is an ordered access control list. The conventional implicit action
// is deny, matching production router semantics.
type ACL struct {
	Name          string
	Rules         []ACLRule
	DefaultAction ACLAction
}

// Eval returns the verdict for the packet.
func (a *ACL) Eval(m *PacketMeta) ACLAction {
	if a == nil {
		return ACLPermit
	}
	for i := range a.Rules {
		if a.Rules[i].Matches(m) {
			return a.Rules[i].Action
		}
	}
	return a.DefaultAction
}

// PacketMeta is the 5-tuple plus TTL used for forwarding decisions.
type PacketMeta struct {
	Src, Dst         netpkt.IP
	Proto            uint8
	SrcPort, DstPort uint16
	TTL              uint8
}

// String renders the 5-tuple.
func (m *PacketMeta) String() string {
	return fmt.Sprintf("%s:%d > %s:%d proto=%d ttl=%d", m.Src, m.SrcPort, m.Dst, m.DstPort, m.Proto, m.TTL)
}

// Verdict classifies the outcome of a forwarding decision.
type Verdict uint8

// Forwarding outcomes.
const (
	VerdictForward Verdict = iota
	VerdictLocal           // destination is one of the device's own addresses
	VerdictNoRoute
	VerdictACLDenied
	VerdictTTLExpired
)

var verdictNames = [...]string{"forward", "local", "no-route", "acl-denied", "ttl-expired"}

// String returns the verdict name.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "unknown"
}

// Decision is the result of one hop's forwarding evaluation.
type Decision struct {
	Verdict Verdict
	// NextHop and Egress are set for VerdictForward.
	NextHop netpkt.IP
	Egress  string
	// Entry is the FIB entry that matched, if any.
	Entry *rib.Entry
	// ACL names the ACL responsible for a deny.
	ACL string
}

// Forwarder is the forwarding engine of one device.
type Forwarder struct {
	fib      *rib.FIB
	local    map[netpkt.IP]bool // device-owned addresses (loopback, interfaces)
	inACL    map[string]*ACL    // per ingress interface
	outACL   map[string]*ACL    // per egress interface
	ecmpSeed uint32
}

// NewForwarder wraps a FIB. The seed perturbs ECMP hashing per device, as
// hardware hash seeds do.
func NewForwarder(fib *rib.FIB, seed uint32) *Forwarder {
	return &Forwarder{
		fib:      fib,
		local:    map[netpkt.IP]bool{},
		inACL:    map[string]*ACL{},
		outACL:   map[string]*ACL{},
		ecmpSeed: seed,
	}
}

// FIB returns the underlying forwarding table.
func (f *Forwarder) FIB() *rib.FIB { return f.fib }

// AddLocal registers a device-owned address.
func (f *Forwarder) AddLocal(ip netpkt.IP) { f.local[ip] = true }

// SetInACL binds an ACL to an ingress interface (nil clears).
func (f *Forwarder) SetInACL(iface string, a *ACL) {
	if a == nil {
		delete(f.inACL, iface)
		return
	}
	f.inACL[iface] = a
}

// SetOutACL binds an ACL to an egress interface (nil clears).
func (f *Forwarder) SetOutACL(iface string, a *ACL) {
	if a == nil {
		delete(f.outACL, iface)
		return
	}
	f.outACL[iface] = a
}

// Forward evaluates one packet arriving on ingress (empty string for
// locally injected packets). It does not mutate m; the caller decrements
// TTL when actually moving the packet.
func (f *Forwarder) Forward(ingress string, m *PacketMeta) Decision {
	if ingress != "" {
		if acl := f.inACL[ingress]; acl.Eval(m) == ACLDeny {
			return Decision{Verdict: VerdictACLDenied, ACL: acl.Name}
		}
	}
	if f.local[m.Dst] {
		return Decision{Verdict: VerdictLocal}
	}
	if m.TTL <= 1 {
		return Decision{Verdict: VerdictTTLExpired}
	}
	entry, ok := f.fib.Lookup(m.Dst)
	if !ok || len(entry.NextHops) == 0 {
		return Decision{Verdict: VerdictNoRoute}
	}
	nh := entry.NextHops[f.ecmpIndex(m, len(entry.NextHops))]
	if acl := f.outACL[nh.Interface]; acl.Eval(m) == ACLDeny {
		return Decision{Verdict: VerdictACLDenied, ACL: acl.Name, Entry: entry}
	}
	return Decision{Verdict: VerdictForward, NextHop: nh.IP, Egress: nh.Interface, Entry: entry}
}

// FlowShare is one slice of a batched forwarding split: Flows flows of an
// aggregate leaving via Hop. A Denied share was stopped by the egress ACL
// named in ACL instead of leaving.
type FlowShare struct {
	Hop    rib.NextHop
	Flows  uint64
	Denied bool
	ACL    string
}

// DeniesIngress evaluates the ingress ACL bound to iface against m,
// returning the denying ACL's name. The traffic walk uses it to apply
// ingress ACLs before its destination-delivery short-circuit, preserving
// the Forward prologue's evaluation order.
func (f *Forwarder) DeniesIngress(iface string, m *PacketMeta) (string, bool) {
	if iface == "" {
		return "", false
	}
	if acl := f.inACL[iface]; acl.Eval(m) == ACLDeny {
		return acl.Name, true
	}
	return "", false
}

// ForwardBatch evaluates an aggregate of n flows that share the 5-tuple
// shape m (the flow-class representative) arriving on ingress. It is the
// batched form of Forward the traffic plane uses: one LPM per aggregate
// instead of one per flow, and instead of hashing one 5-tuple to one ECMP
// bucket it spreads the n flows across the matched entry's whole hop group
// with SpreadFlows keyed by key (the aggregate's seeded identity). Egress
// ACLs are evaluated per share, so a deny on one ECMP branch loses only
// that branch's flows. Non-forward verdicts apply to the whole aggregate
// and return nil shares.
func (f *Forwarder) ForwardBatch(ingress string, m *PacketMeta, n uint64, key uint64) (Decision, []FlowShare) {
	if ingress != "" {
		if acl := f.inACL[ingress]; acl.Eval(m) == ACLDeny {
			return Decision{Verdict: VerdictACLDenied, ACL: acl.Name}, nil
		}
	}
	if f.local[m.Dst] {
		return Decision{Verdict: VerdictLocal}, nil
	}
	if m.TTL <= 1 {
		return Decision{Verdict: VerdictTTLExpired}, nil
	}
	entry, ok := f.fib.Lookup(m.Dst)
	if !ok || len(entry.NextHops) == 0 {
		return Decision{Verdict: VerdictNoRoute}, nil
	}
	counts := SpreadFlows(key, entry.NextHops, n)
	shares := make([]FlowShare, 0, len(entry.NextHops))
	for i, nh := range entry.NextHops {
		if counts[i] == 0 {
			continue
		}
		s := FlowShare{Hop: nh, Flows: counts[i]}
		if acl := f.outACL[nh.Interface]; acl.Eval(m) == ACLDeny {
			s.Denied, s.ACL = true, acl.Name
		}
		shares = append(shares, s)
	}
	return Decision{Verdict: VerdictForward, Entry: entry}, shares
}

// SpreadFlows deterministically spreads n flows across a hop group's
// buckets: every bucket gets n/k, and the n%k remainder lands on a rotation
// anchored by mixing the aggregate key with rib.HashHops over the group's
// *content*. Hashing values rather than the slice identity keeps the split
// byte-identical whether hop groups are interned or private
// (rib.SetHopSharing ablation), and any FIB reprogram that changes the
// group re-anchors the rotation — flows visibly re-spread, as real ECMP
// rehashing does.
func SpreadFlows(key uint64, nhs []rib.NextHop, n uint64) []uint64 {
	k := uint64(len(nhs))
	counts := make([]uint64, k)
	if k == 0 || n == 0 {
		return counts
	}
	base, rem := n/k, n%k
	for i := range counts {
		counts[i] = base
	}
	if rem > 0 {
		// splitmix64 finalizer over (key ⊕ group content) anchors the rotation.
		x := key ^ rib.HashHops(nhs)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		start := x % k
		for i := uint64(0); i < rem; i++ {
			counts[(start+i)%k]++
		}
	}
	return counts
}

// ecmpIndex hashes the 5-tuple to pick one of n next hops. The hash is
// deterministic per (device seed, flow), so a flow always takes one path —
// matching real ECMP.
func (f *Forwarder) ecmpIndex(m *PacketMeta, n int) int {
	if n == 1 {
		return 0
	}
	h := fnv.New32a()
	var b [17]byte
	put32 := func(off int, v uint32) {
		b[off] = byte(v >> 24)
		b[off+1] = byte(v >> 16)
		b[off+2] = byte(v >> 8)
		b[off+3] = byte(v)
	}
	put32(0, uint32(m.Src))
	put32(4, uint32(m.Dst))
	put32(8, f.ecmpSeed)
	b[12] = m.Proto
	b[13] = byte(m.SrcPort >> 8)
	b[14] = byte(m.SrcPort)
	b[15] = byte(m.DstPort >> 8)
	b[16] = byte(m.DstPort)
	h.Write(b[:])
	return int(h.Sum32() % uint32(n))
}

// Clone returns a forwarder over fib (the forked emulation's own table)
// with the same local-address set, ACL bindings and ECMP hash seed as f.
// ACL objects are shared between forks: once bound they are immutable —
// config reloads build new ACLs and rebind rather than editing rules in
// place — so sharing preserves behavior while keeping forks cheap.
func (f *Forwarder) Clone(fib *rib.FIB) *Forwarder {
	c := &Forwarder{
		fib:      fib,
		local:    make(map[netpkt.IP]bool, len(f.local)),
		inACL:    make(map[string]*ACL, len(f.inACL)),
		outACL:   make(map[string]*ACL, len(f.outACL)),
		ecmpSeed: f.ecmpSeed,
	}
	for ip := range f.local {
		c.local[ip] = true
	}
	for name, acl := range f.inACL {
		c.inACL[name] = acl
	}
	for name, acl := range f.outACL {
		c.outACL[name] = acl
	}
	return c
}
