package dataplane

import (
	"testing"
	"testing/quick"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
)

func pfx(s string) netpkt.Prefix { return netpkt.MustParsePrefix(s) }
func ip(s string) netpkt.IP      { return netpkt.MustParseIP(s) }

func newFwd(t *testing.T) *Forwarder {
	fib := rib.NewFIB()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fib.Install(&rib.Entry{
		Prefix: pfx("100.64.0.0/24"), Proto: rib.ProtoBGP,
		NextHops: []rib.NextHop{{IP: ip("10.128.0.1"), Interface: "et0"}},
	}))
	must(fib.Install(&rib.Entry{
		Prefix: pfx("100.65.0.0/24"), Proto: rib.ProtoBGP,
		NextHops: []rib.NextHop{
			{IP: ip("10.128.0.1"), Interface: "et0"},
			{IP: ip("10.128.0.3"), Interface: "et1"},
			{IP: ip("10.128.0.5"), Interface: "et2"},
			{IP: ip("10.128.0.7"), Interface: "et3"},
		},
	}))
	f := NewForwarder(fib, 42)
	f.AddLocal(ip("10.0.0.1"))
	return f
}

func meta(dst string) *PacketMeta {
	return &PacketMeta{Src: ip("192.0.2.1"), Dst: ip(dst), Proto: netpkt.ProtoUDP, SrcPort: 1234, DstPort: 80, TTL: 64}
}

func TestForwardBasic(t *testing.T) {
	f := newFwd(t)
	d := f.Forward("et9", meta("100.64.0.55"))
	if d.Verdict != VerdictForward || d.NextHop != ip("10.128.0.1") || d.Egress != "et0" {
		t.Fatalf("decision = %+v", d)
	}
	if d.Entry == nil || d.Entry.Prefix != pfx("100.64.0.0/24") {
		t.Fatal("matched entry not reported")
	}
}

func TestLocalDelivery(t *testing.T) {
	f := newFwd(t)
	if d := f.Forward("et0", meta("10.0.0.1")); d.Verdict != VerdictLocal {
		t.Fatalf("verdict = %v, want local", d.Verdict)
	}
}

func TestNoRoute(t *testing.T) {
	f := newFwd(t)
	if d := f.Forward("et0", meta("203.0.113.5")); d.Verdict != VerdictNoRoute {
		t.Fatalf("verdict = %v, want no-route", d.Verdict)
	}
}

func TestTTLExpired(t *testing.T) {
	f := newFwd(t)
	m := meta("100.64.0.1")
	m.TTL = 1
	if d := f.Forward("et0", m); d.Verdict != VerdictTTLExpired {
		t.Fatalf("verdict = %v, want ttl-expired", d.Verdict)
	}
	// TTL does not gate local delivery.
	m2 := meta("10.0.0.1")
	m2.TTL = 1
	if d := f.Forward("et0", m2); d.Verdict != VerdictLocal {
		t.Fatal("TTL must not gate local delivery")
	}
}

func TestECMPDeterministicPerFlow(t *testing.T) {
	f := newFwd(t)
	m := meta("100.65.0.9")
	first := f.Forward("", m)
	for i := 0; i < 10; i++ {
		if d := f.Forward("", m); d.Egress != first.Egress {
			t.Fatal("same flow hashed to different paths")
		}
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	f := newFwd(t)
	seen := map[string]int{}
	for port := uint16(1); port <= 200; port++ {
		m := meta("100.65.0.9")
		m.SrcPort = port
		d := f.Forward("", m)
		if d.Verdict != VerdictForward {
			t.Fatalf("verdict = %v", d.Verdict)
		}
		seen[d.Egress]++
	}
	if len(seen) != 4 {
		t.Fatalf("flows used %d of 4 paths: %v", len(seen), seen)
	}
	for eg, n := range seen {
		if n < 20 {
			t.Fatalf("path %s underused (%d/200): %v", eg, n, seen)
		}
	}
}

func TestECMPSeedChangesMapping(t *testing.T) {
	fib := rib.NewFIB()
	fib.Install(&rib.Entry{
		Prefix: pfx("100.65.0.0/24"), Proto: rib.ProtoBGP,
		NextHops: []rib.NextHop{
			{IP: 1, Interface: "et0"}, {IP: 2, Interface: "et1"},
			{IP: 3, Interface: "et2"}, {IP: 4, Interface: "et3"},
		},
	})
	a, b := NewForwarder(fib, 1), NewForwarder(fib, 2)
	diff := 0
	for port := uint16(1); port <= 64; port++ {
		m := meta("100.65.0.9")
		m.SrcPort = port
		if a.Forward("", m).Egress != b.Forward("", m).Egress {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical ECMP mapping for all flows")
	}
}

func TestIngressACLDeny(t *testing.T) {
	f := newFwd(t)
	src := pfx("192.0.2.0/24")
	f.SetInACL("et9", &ACL{
		Name:          "edge-in",
		Rules:         []ACLRule{{Action: ACLDeny, Src: &src}},
		DefaultAction: ACLPermit,
	})
	d := f.Forward("et9", meta("100.64.0.1"))
	if d.Verdict != VerdictACLDenied || d.ACL != "edge-in" {
		t.Fatalf("decision = %+v", d)
	}
	// Other ingress unaffected.
	if d := f.Forward("et8", meta("100.64.0.1")); d.Verdict != VerdictForward {
		t.Fatal("ACL leaked to other interface")
	}
	// Clearing restores.
	f.SetInACL("et9", nil)
	if d := f.Forward("et9", meta("100.64.0.1")); d.Verdict != VerdictForward {
		t.Fatal("ACL clear failed")
	}
}

func TestEgressACLDeny(t *testing.T) {
	f := newFwd(t)
	f.SetOutACL("et0", &ACL{
		Name:          "out-guard",
		Rules:         []ACLRule{{Action: ACLDeny, Proto: netpkt.ProtoUDP, DstPort: 80}},
		DefaultAction: ACLPermit,
	})
	d := f.Forward("", meta("100.64.0.1"))
	if d.Verdict != VerdictACLDenied || d.ACL != "out-guard" {
		t.Fatalf("decision = %+v", d)
	}
	m := meta("100.64.0.1")
	m.DstPort = 443
	if d := f.Forward("", m); d.Verdict != VerdictForward {
		t.Fatal("unrelated port blocked")
	}
}

func TestACLImplicitDeny(t *testing.T) {
	allowed := pfx("100.64.0.0/24")
	acl := &ACL{Name: "strict", Rules: []ACLRule{{Action: ACLPermit, Dst: &allowed}}}
	if acl.Eval(meta("100.64.0.1")) != ACLPermit {
		t.Fatal("permit rule missed")
	}
	if acl.Eval(meta("100.65.0.1")) != ACLDeny {
		t.Fatal("implicit deny missed")
	}
	var nilACL *ACL
	if nilACL.Eval(meta("1.2.3.4")) != ACLPermit {
		t.Fatal("nil ACL must permit")
	}
}

// TestMistypedACLBlackhole reproduces the paper's §2 human-error example:
// "deny 10.0.0.0/2" typed instead of "deny 10.0.0.0/20" blackholes a vast
// range.
func TestMistypedACLBlackhole(t *testing.T) {
	intended := pfx("10.0.0.0/20")
	typo := pfx("10.0.0.0/2")
	mk := func(p netpkt.Prefix) *ACL {
		return &ACL{Name: "guard", Rules: []ACLRule{{Action: ACLDeny, Dst: &p}}, DefaultAction: ACLPermit}
	}
	victim := meta("10.200.1.1") // inside /2, far outside /20
	if mk(intended).Eval(victim) != ACLPermit {
		t.Fatal("intended ACL should permit")
	}
	if mk(typo).Eval(victim) != ACLDeny {
		t.Fatal("typo ACL should (wrongly) deny — the incident CrystalNet catches")
	}
}

func TestVerdictAndMetaStrings(t *testing.T) {
	if VerdictForward.String() != "forward" || VerdictNoRoute.String() != "no-route" || Verdict(99).String() != "unknown" {
		t.Fatal("verdict names wrong")
	}
	m := meta("100.64.0.1")
	if m.String() == "" {
		t.Fatal("meta string empty")
	}
}

func TestPropertyECMPIndexInRange(t *testing.T) {
	fib := rib.NewFIB()
	f := NewForwarder(fib, 7)
	fn := func(src, dst uint32, proto uint8, sp, dp uint16, n uint8) bool {
		paths := int(n%16) + 1
		m := &PacketMeta{Src: netpkt.IP(src), Dst: netpkt.IP(dst), Proto: proto, SrcPort: sp, DstPort: dp}
		i := f.ecmpIndex(m, paths)
		return i >= 0 && i < paths
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkForward(b *testing.B) {
	f := NewForwarder(rib.NewFIB(), 3)
	for i := 0; i < 10000; i++ {
		f.FIB().Install(&rib.Entry{
			Prefix:   netpkt.Prefix{Addr: netpkt.IP(0x64000000 + i*256), Len: 24},
			Proto:    rib.ProtoBGP,
			NextHops: []rib.NextHop{{IP: 1, Interface: "et0"}, {IP: 2, Interface: "et1"}},
		})
	}
	m := &PacketMeta{Src: 9, Dst: netpkt.IP(0x64000000 + 999*256 + 1), Proto: netpkt.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.SrcPort = uint16(i)
		if d := f.Forward("et9", m); d.Verdict != VerdictForward {
			b.Fatal(d.Verdict)
		}
	}
}
