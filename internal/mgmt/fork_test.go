package mgmt

import (
	"strings"
	"testing"

	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
)

func TestForkPlane(t *testing.T) {
	_, plane, devs := build(t)

	// Fork with a device map standing in for the forked emulation's
	// devices; here the "fork" maps names back to the same device set, but
	// via distinct endpoint records.
	fork := plane.Fork(func(name string) *firmware.Device { return devs[name] })

	// Addressing, credentials and the VM tree copy over.
	if got, want := fork.Names(), plane.Names(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("fork names = %v, want %v", got, want)
	}
	ipA, err := plane.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	ipF, err := fork.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	if ipF != ipA {
		t.Fatalf("fork resolved a to %s, parent to %s", ipF, ipA)
	}

	// Sessions dialed on the fork authenticate and execute.
	s, err := fork.DialByName("a", cred)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec("show version")
	if err != nil || !strings.Contains(out, "a test 1") {
		t.Fatalf("fork exec: %q %v", out, err)
	}
	if _, err := fork.Dial(ipA, "wrong"); err == nil {
		t.Fatal("fork accepted wrong credential")
	}

	// Registrations on the fork must not leak back into the parent.
	other := *devs["a"]
	other.Name = "fork-only"
	if err := fork.Register(&other, netpkt.MustParseIP("10.255.255.1"), cred, "vm-9"); err != nil {
		t.Fatal(err)
	}
	if _, err := plane.Resolve("fork-only"); err == nil {
		t.Fatal("fork registration visible in parent plane")
	}
}

func TestNeighborCommandUsage(t *testing.T) {
	_, plane, _ := build(t)
	s, err := plane.DialByName("a", cred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("neighbor 10.0.0.2"); err == nil {
		t.Fatal("incomplete neighbor command accepted")
	}
	if _, err := s.Exec("neighbor 10.0.0.2 frobnicate"); err == nil {
		t.Fatal("unknown neighbor action accepted")
	}
	if _, err := s.Exec("neighbor not-an-ip shutdown"); err == nil {
		t.Fatal("unparseable neighbor IP accepted")
	}
	// show route with a bad address takes the parse-error path too.
	if _, err := s.Exec("show route not-an-ip"); err == nil {
		t.Fatal("unparseable route target accepted")
	}
}

func TestDialByNameNXDOMAIN(t *testing.T) {
	_, plane, _ := build(t)
	if _, err := plane.DialByName("no-such-device", cred); err == nil {
		t.Fatal("DialByName to unknown name succeeded")
	}
}
