package mgmt

import (
	"strings"
	"testing"
	"time"

	"crystalnet/internal/config"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/phynet"
	"crystalnet/internal/sim"
	"crystalnet/internal/topo"
)

const cred = "crystal-ops"

func build(t *testing.T) (*sim.Engine, *Plane, map[string]*firmware.Device) {
	n := topo.NewNetwork("pair")
	a := n.AddDevice("a", topo.LayerToR, 65001, "test")
	b := n.AddDevice("b", topo.LayerLeaf, 65002, "vmb")
	a.Originated = append(a.Originated, netpkt.MustParsePrefix("100.64.0.0/24"))
	n.Connect(a, b)

	eng := sim.NewEngine(1)
	fabric := phynet.NewFabric(eng, phynet.LinuxBridge)
	host := fabric.AddHost("vm-0")
	devs := map[string]*firmware.Device{}
	plane := NewPlane()
	containers := map[string]*phynet.Container{}
	for _, d := range n.Devices() {
		ct := host.AddContainer(d.Name)
		containers[d.Name] = ct
		for _, intf := range d.Interfaces {
			ct.AddIface(intf.Name, intf.MAC)
		}
	}
	for _, l := range n.Links {
		fabric.Connect(containers[l.A.Device.Name].Iface(l.A.Name), containers[l.B.Device.Name].Iface(l.B.Name))
	}
	for _, d := range n.Devices() {
		img := firmware.VendorImage{Name: d.Vendor, Version: "1", BootFixed: time.Second, BootJitter: time.Second}
		cfg := config.GenerateDevice(d)
		cfg.Credential = cred
		dev := firmware.New(d.Name, img, cfg, eng, fabric, containers[d.Name])
		devs[d.Name] = dev
		if err := plane.Register(dev, d.MgmtIP, cred, "vm-0"); err != nil {
			t.Fatal(err)
		}
		dev.Boot(nil)
	}
	if _, err := eng.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	return eng, plane, devs
}

func TestResolveAndDial(t *testing.T) {
	_, plane, _ := build(t)
	ip, err := plane.Resolve("a")
	if err != nil {
		t.Fatal(err)
	}
	s, err := plane.Dial(ip, cred)
	if err != nil {
		t.Fatal(err)
	}
	if s.Device().Name != "a" {
		t.Fatal("wrong device")
	}
	if _, err := plane.Resolve("zz"); err == nil {
		t.Fatal("NXDOMAIN expected")
	}
	if _, err := plane.Dial(netpkt.MustParseIP("9.9.9.9"), cred); err == nil {
		t.Fatal("no route expected")
	}
	if _, err := plane.Dial(ip, "wrong"); err == nil {
		t.Fatal("auth failure expected")
	}
	names := plane.Names()
	if len(names) != 2 || names[0] != "a" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegisterConflicts(t *testing.T) {
	_, plane, devs := build(t)
	if err := plane.Register(devs["a"], 999, cred, "vm-0"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	other := *devs["a"]
	other.Name = "x"
	ip, _ := plane.Resolve("a")
	if err := plane.Register(&other, ip, cred, "vm-0"); err == nil {
		t.Fatal("duplicate IP accepted")
	}
}

func TestShowCommands(t *testing.T) {
	_, plane, _ := build(t)
	s, _ := plane.DialByName("a", cred)

	out, err := s.Exec("show version")
	if err != nil || !strings.Contains(out, "a test 1") {
		t.Fatalf("show version: %q %v", out, err)
	}
	out, err = s.Exec("show bgp")
	if err != nil || !strings.Contains(out, "BGP router AS 65001") || !strings.Contains(out, "state Established") {
		t.Fatalf("show bgp: %q %v", out, err)
	}
	out, err = s.Exec("show route " + netpkt.MustParseIP("10.0.0.2").String())
	if err != nil || !strings.Contains(out, "[bgp]") {
		t.Fatalf("show route: %q %v", out, err)
	}
	out, err = s.Exec("show route")
	if err != nil || !strings.Contains(out, "connected") {
		t.Fatalf("show route full: %q %v", out, err)
	}
	out, err = s.Exec("show interfaces")
	if err != nil || !strings.Contains(out, "lo ") {
		t.Fatalf("show interfaces: %q %v", out, err)
	}
	if _, err := s.Exec("show frobs"); err == nil {
		t.Fatal("unknown show target accepted")
	}
	if _, err := s.Exec("show"); err == nil {
		t.Fatal("bare show accepted")
	}
	if out, _ := s.Exec(""); out != "" {
		t.Fatal("empty command should be quiet")
	}
	if _, err := s.Exec("colorless green ideas"); err == nil {
		t.Fatal("nonsense accepted")
	}
	// Unrouted lookup.
	out, err = s.Exec("show route 203.0.113.9")
	if err != nil || !strings.Contains(out, "not in table") {
		t.Fatalf("missing route output: %q %v", out, err)
	}
}

func TestVendorCLIDialect(t *testing.T) {
	_, plane, _ := build(t)
	// b runs the vmb image: "display", not "show".
	s, err := plane.DialByName("b", cred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("show version"); err == nil {
		t.Fatal("vmb accepted 'show' — dialect divergence lost")
	}
	out, err := s.Exec("display version")
	if err != nil || !strings.Contains(out, "vmb") {
		t.Fatalf("display version: %q %v", out, err)
	}
}

func TestNeighborShutdownVsDeviceShutdown(t *testing.T) {
	eng, plane, devs := build(t)
	s, _ := plane.DialByName("a", cred)
	peerIP := devs["a"].Config().Neighbors[0].IP

	// Correct surgical action: one session down, device alive.
	if _, err := s.Exec("neighbor " + peerIP.String() + " shutdown"); err != nil {
		t.Fatal(err)
	}
	eng.Run(5_000_000)
	if devs["a"].State() != firmware.DeviceRunning {
		t.Fatal("device died from neighbor shutdown")
	}
	if devs["a"].PullStates().Established != 0 {
		t.Fatal("session still up")
	}
	if _, err := s.Exec("neighbor 9.9.9.9 shutdown"); err == nil {
		t.Fatal("unknown neighbor accepted")
	}

	// The §2 tool-bug action: whole device halted.
	if _, err := s.Exec("shutdown"); err != nil {
		t.Fatal(err)
	}
	if devs["a"].State() != firmware.DeviceStopped {
		t.Fatal("shutdown did not halt device")
	}
	// Session to a stopped device fails.
	if _, err := s.Exec("show version"); err == nil {
		t.Fatal("exec on halted device succeeded")
	}
	if _, err := plane.DialByName("a", cred); err == nil {
		t.Fatal("dial to halted device succeeded")
	}
}

func TestReloadViaCLI(t *testing.T) {
	eng, plane, devs := build(t)
	s, _ := plane.DialByName("a", cred)
	if _, err := s.Exec("reload"); err != nil {
		t.Fatal(err)
	}
	eng.Run(5_000_000)
	if devs["a"].State() != firmware.DeviceRunning {
		t.Fatal("device not back after reload")
	}
	if devs["a"].PullStates().Established != 1 {
		t.Fatal("session not re-established after reload")
	}
}

func TestShowLog(t *testing.T) {
	_, plane, _ := build(t)
	s, _ := plane.DialByName("a", cred)
	out, err := s.Exec("show log")
	if err != nil || !strings.Contains(out, "boot complete") {
		t.Fatalf("show log: %q %v", out, err)
	}
}

func TestExecAfterDeviceCrash(t *testing.T) {
	_, plane, devs := build(t)
	s, err := plane.DialByName("a", cred)
	if err != nil {
		t.Fatal(err)
	}
	devs["a"].Crash("test")
	if _, err := s.Exec("show version"); err == nil {
		t.Fatal("exec on crashed device succeeded")
	}
	if _, err := plane.DialByName("a", cred); err == nil {
		t.Fatal("dial to crashed device succeeded")
	}
}

func TestNeighborShutdownWithoutBGP(t *testing.T) {
	_, plane, devs := build(t)
	s, _ := plane.DialByName("a", cred)
	// Stop-and-restart strips the BGP instance briefly; calling into a
	// device whose BGP is gone must error cleanly, not panic.
	devs["a"].Stop("test")
	if _, err := s.Exec("neighbor 1.2.3.4 shutdown"); err == nil {
		t.Fatal("command on stopped device succeeded")
	}
}
