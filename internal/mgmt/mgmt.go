// Package mgmt implements CrystalNet's out-of-band management plane (§4.2,
// Figure 6): a jumpbox-rooted overlay joining every emulated device's
// management interface, DNS for management names, credentialed SSH-style
// sessions, and the per-vendor CLI operators' existing tools drive.
//
// Structure mirrors the paper: each VM has a management bridge VXLAN-
// tunneled to the Linux jumpbox (a tree, never an L2 mesh), and tools run
// on the jumpbox addressing devices by name or management IP — unchanged
// from production.
//
// DESIGN.md §2 (substrates) places the management overlay in the system
// inventory.
package mgmt

import (
	"fmt"
	"sort"
	"strings"

	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
)

// Plane is the management overlay rooted at the jumpbox.
type Plane struct {
	byName map[string]*endpoint
	byIP   map[netpkt.IP]*endpoint
	// vmOf tracks which VM's management bridge each device hangs off —
	// the Figure 6 tree shape, kept for inventory/validation.
	vmOf map[string]string
}

type endpoint struct {
	dev    *firmware.Device
	ip     netpkt.IP
	cred   string
	vmName string
}

// NewPlane returns an empty management plane (jumpbox only).
func NewPlane() *Plane {
	return &Plane{byName: map[string]*endpoint{}, byIP: map[netpkt.IP]*endpoint{}, vmOf: map[string]string{}}
}

// Register attaches a device's management interface to its VM's bridge.
// The credential is the unified one Prepare injects into configs (§6.1).
func (p *Plane) Register(dev *firmware.Device, ip netpkt.IP, cred, vmName string) error {
	if _, dup := p.byName[dev.Name]; dup {
		return fmt.Errorf("mgmt: %s already registered", dev.Name)
	}
	if _, dup := p.byIP[ip]; dup {
		return fmt.Errorf("mgmt: management IP %s already in use", ip)
	}
	ep := &endpoint{dev: dev, ip: ip, cred: cred, vmName: vmName}
	p.byName[dev.Name] = ep
	p.byIP[ip] = ep
	p.vmOf[dev.Name] = vmName
	return nil
}

// Resolve is the jumpbox DNS: device name to management IP.
func (p *Plane) Resolve(name string) (netpkt.IP, error) {
	ep, ok := p.byName[name]
	if !ok {
		return 0, fmt.Errorf("mgmt: NXDOMAIN %q", name)
	}
	return ep.ip, nil
}

// Names lists registered devices, sorted.
func (p *Plane) Names() []string {
	out := make([]string, 0, len(p.byName))
	for n := range p.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Session is an authenticated CLI session to one device.
type Session struct {
	ep *endpoint
}

// Dial opens a session to a management IP with the given credential —
// Telnet/SSH in production, and the same authentication semantics here.
func (p *Plane) Dial(ip netpkt.IP, cred string) (*Session, error) {
	ep, ok := p.byIP[ip]
	if !ok {
		return nil, fmt.Errorf("mgmt: no route to host %s", ip)
	}
	if ep.cred != cred {
		return nil, fmt.Errorf("mgmt: authentication failed for %s", ep.dev.Name)
	}
	if ep.dev.State() != firmware.DeviceRunning {
		return nil, fmt.Errorf("mgmt: %s unreachable (firmware %s)", ep.dev.Name, ep.dev.State())
	}
	return &Session{ep: ep}, nil
}

// DialByName resolves and dials in one step.
func (p *Plane) DialByName(name, cred string) (*Session, error) {
	ip, err := p.Resolve(name)
	if err != nil {
		return nil, err
	}
	return p.Dial(ip, cred)
}

// Device returns the session's device.
func (s *Session) Device() *firmware.Device { return s.ep.dev }

// Exec runs one CLI command and returns its output. The command verb is
// vendor-dialect sensitive: CTNR/VM-A vendors use "show", VM-B uses
// "display" — exactly the heterogeneity operators' tools must cope with.
func (s *Session) Exec(cmd string) (string, error) {
	dev := s.ep.dev
	if dev.State() != firmware.DeviceRunning {
		return "", fmt.Errorf("mgmt: connection to %s lost", dev.Name)
	}
	f := strings.Fields(strings.TrimSpace(cmd))
	if len(f) == 0 {
		return "", nil
	}
	showVerb := "show"
	if dev.Image.Name == "vmb" {
		showVerb = "display"
	}
	switch f[0] {
	case showVerb:
		return s.execShow(f[1:])
	case "show", "display":
		return "", fmt.Errorf("%% unknown command %q (this is a %s device)", f[0], dev.Image.Name)
	case "neighbor":
		// neighbor <ip> shutdown
		if len(f) == 3 && f[2] == "shutdown" {
			ip, err := netpkt.ParseIP(f[1])
			if err != nil {
				return "", err
			}
			return s.shutdownNeighbor(ip)
		}
		return "", fmt.Errorf("%% usage: neighbor <ip> shutdown")
	case "shutdown":
		// Shut down the whole device — the footgun the §2 tool bug hit.
		dev.Stop("administrative shutdown via management plane")
		return "device halted", nil
	case "reload":
		dev.Reload(nil, nil)
		return "reload scheduled", nil
	default:
		return "", fmt.Errorf("%% unknown command %q", f[0])
	}
}

func (s *Session) shutdownNeighbor(ip netpkt.IP) (string, error) {
	dev := s.ep.dev
	if dev.BGP() == nil {
		return "", fmt.Errorf("%% BGP not running")
	}
	for _, peer := range dev.BGP().Peers() {
		if peer.Config.RemoteIP == ip {
			peer.Stop("administrative shutdown")
			return fmt.Sprintf("neighbor %s shutdown", ip), nil
		}
	}
	return "", fmt.Errorf("%% no neighbor %s", ip)
}

func (s *Session) execShow(f []string) (string, error) {
	dev := s.ep.dev
	if len(f) == 0 {
		return "", fmt.Errorf("%% incomplete command")
	}
	switch f[0] {
	case "version":
		return fmt.Sprintf("%s %s %s uptime-state %s", dev.Name, dev.Image.Name, dev.Image.Version, dev.State()), nil
	case "bgp":
		st := dev.PullStates()
		var b strings.Builder
		fmt.Fprintf(&b, "BGP router AS %d, %d prefixes\n", dev.Config().ASN, st.LocRIB)
		if dev.BGP() != nil {
			for _, peer := range dev.BGP().Peers() {
				fmt.Fprintf(&b, "neighbor %s as %d state %s pfx-rcvd %d\n",
					peer.Config.RemoteIP, peer.Config.RemoteAS, peer.State(), peer.AdjInLen())
			}
		}
		return b.String(), nil
	case "route":
		if dev.FIB() == nil {
			return "", fmt.Errorf("%% no forwarding table")
		}
		if len(f) > 1 {
			ip, err := netpkt.ParseIP(f[1])
			if err != nil {
				return "", err
			}
			e, ok := dev.FIB().Lookup(ip)
			if !ok {
				return "% network not in table", nil
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%s via", e.Prefix)
			for _, nh := range e.NextHops {
				fmt.Fprintf(&b, " %s", nh)
			}
			fmt.Fprintf(&b, " [%s]", e.Proto)
			return b.String(), nil
		}
		return dev.FIB().Snapshot().String(), nil
	case "log":
		return strings.Join(dev.Logs, "\n"), nil
	case "interfaces":
		var b strings.Builder
		for _, ic := range dev.Config().Interfaces {
			fmt.Fprintf(&b, "%s %s\n", ic.Name, ic.Addr)
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("%% unknown show target %q", f[0])
	}
}

// Fork returns a copy of the plane with every endpoint's device pointer
// swapped via devOf (device name -> the forked emulation's device).
// Addressing, credentials and VM placement are value state and copy
// directly; the source plane is read strictly read-only.
func (p *Plane) Fork(devOf func(name string) *firmware.Device) *Plane {
	c := NewPlane()
	for name, ep := range p.byName {
		ne := &endpoint{dev: devOf(name), ip: ep.ip, cred: ep.cred, vmName: ep.vmName}
		c.byName[name] = ne
		c.byIP[ep.ip] = ne
		c.vmOf[name] = ep.vmName
	}
	return c
}
