package ospf

import (
	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
)

// Fork returns a deep copy of the instance for a forked emulation, rebound
// to the fork's clock and hooks. The source instance is read strictly
// read-only so concurrent forks are safe.
//
// The SPF debounce timer is left nil: forks are only taken at quiescence,
// when any pending recomputation has already run. LSAs are deep-copied via
// LSA.Clone so a fork's flooding cannot mutate the parent's database.
func (in *Instance) Fork(clock Clock, hooks Hooks) *Instance {
	if hooks.Logf == nil {
		hooks.Logf = func(string, ...any) {}
	}
	c := &Instance{
		cfg:       in.cfg,
		clock:     clock,
		hooks:     hooks,
		stubs:     append([]netpkt.Prefix(nil), in.stubs...),
		lsdb:      make(map[Key]*LSA, len(in.lsdb)),
		seq:       in.seq,
		installed: make(map[netpkt.Prefix][]rib.NextHop, len(in.installed)),
	}
	// hooks.Rec is the fork's recorder; its deep-copied counters continue
	// the parent's totals rather than restarting from zero.
	c.bindMetrics(hooks.Rec)
	for k, l := range in.lsdb {
		c.lsdb[k] = l.Clone()
	}
	for p, nhs := range in.installed {
		c.installed[p] = append([]rib.NextHop(nil), nhs...)
	}
	c.ifaces = make([]*Iface, len(in.ifaces))
	for i, f := range in.ifaces {
		nf := &Iface{
			cfg:       f.cfg,
			idx:       f.idx,
			up:        f.up,
			dr:        f.dr,
			bdr:       f.bdr,
			elected:   f.elected,
			neighbors: make(map[RouterID]*neighbor, len(f.neighbors)),
		}
		for id, nb := range f.neighbors {
			dup := *nb
			nf.neighbors[id] = &dup
		}
		c.ifaces[i] = nf
	}
	return c
}
