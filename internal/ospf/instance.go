package ospf

import (
	"sort"
	"time"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/obs"
	"crystalnet/internal/rib"
)

// Clock is the slice of the simulation engine the instance needs.
type Clock interface {
	After(d time.Duration, fn func()) Timer
}

// Timer is a cancelable scheduled callback.
type Timer interface {
	Cancel() bool
}

// IfaceType distinguishes point-to-point links from broadcast segments.
type IfaceType uint8

// Interface types.
const (
	P2P IfaceType = iota
	Broadcast
)

// IfaceConfig describes one OSPF-enabled interface.
type IfaceConfig struct {
	Name     string
	Addr     netpkt.Prefix // interface address with mask
	Type     IfaceType
	Cost     uint16
	Priority uint8 // DR election priority (broadcast only); 0 = never DR
}

// NeighborState tracks adjacency progress (condensed FSM).
type NeighborState uint8

// Adjacency states.
const (
	NbrDown NeighborState = iota
	NbrInit               // their hello seen, they have not seen us
	NbrFull               // bidirectional + LSDB exchanged
)

type neighbor struct {
	id       RouterID
	addr     netpkt.IP
	priority uint8
	state    NeighborState
}

// Iface is the runtime state of one interface.
type Iface struct {
	cfg       IfaceConfig
	idx       int
	up        bool
	neighbors map[RouterID]*neighbor
	dr, bdr   RouterID
	elected   bool
}

// DR returns the designated router elected on this interface's segment.
func (i *Iface) DR() RouterID { return i.dr }

// BDR returns the backup designated router.
func (i *Iface) BDR() RouterID { return i.bdr }

// Config parameterizes an instance.
type Config struct {
	Name          string
	RouterID      RouterID
	HelloInterval time.Duration // default 1s
	ElectionWait  time.Duration // default 3s
	SPFDelay      time.Duration // default 50ms (debounce)
}

// Hooks connect the instance to its hosting firmware.
type Hooks struct {
	// Send transmits a packet out interface i. dst 0 means every neighbor
	// on the segment (multicast).
	Send         func(ifaceIdx int, dst RouterID, data []byte)
	InstallRoute func(p netpkt.Prefix, nhs []rib.NextHop) error
	RemoveRoute  func(p netpkt.Prefix)
	Logf         func(format string, args ...any)
	// Rec is the observability recorder; nil disables tracing. Counter
	// handles are cached at construction (see bindMetrics).
	Rec *obs.Recorder
}

// Instance is one OSPF router.
type Instance struct {
	cfg   Config
	clock Clock
	hooks Hooks

	ifaces []*Iface
	stubs  []netpkt.Prefix // loopbacks etc.
	lsdb   map[Key]*LSA
	seq    uint32

	spfTimer  Timer
	installed map[netpkt.Prefix][]rib.NextHop

	// Cached obs counter handles; nil (no-op) when hooks.Rec is nil.
	mPktsIn, mPktsOut *obs.Counter
	mSPFRuns          *obs.Counter
}

// bindMetrics caches the instance's counter handles against rec (nil-safe).
func (in *Instance) bindMetrics(rec *obs.Recorder) {
	in.mPktsIn = rec.Counter("ospf.pkts_in", in.cfg.Name)
	in.mPktsOut = rec.Counter("ospf.pkts_out", in.cfg.Name)
	in.mSPFRuns = rec.Counter("ospf.spf_runs", in.cfg.Name)
}

// send is the single egress choke point: every packet leaves through it so
// the out-counter stays exact.
func (in *Instance) send(ifaceIdx int, dst RouterID, data []byte) {
	in.mPktsOut.Inc()
	in.hooks.Send(ifaceIdx, dst, data)
}

// New creates an instance.
func New(cfg Config, clock Clock, hooks Hooks) *Instance {
	if cfg.HelloInterval <= 0 {
		cfg.HelloInterval = time.Second
	}
	if cfg.ElectionWait <= 0 {
		cfg.ElectionWait = 3 * time.Second
	}
	if cfg.SPFDelay <= 0 {
		cfg.SPFDelay = 50 * time.Millisecond
	}
	if hooks.Logf == nil {
		hooks.Logf = func(string, ...any) {}
	}
	in := &Instance{
		cfg: cfg, clock: clock, hooks: hooks,
		lsdb:      map[Key]*LSA{},
		installed: map[netpkt.Prefix][]rib.NextHop{},
	}
	in.bindMetrics(hooks.Rec)
	return in
}

// AddInterface registers an interface; returns its index.
func (in *Instance) AddInterface(cfg IfaceConfig) int {
	if cfg.Cost == 0 {
		cfg.Cost = 10
	}
	i := &Iface{cfg: cfg, idx: len(in.ifaces), neighbors: map[RouterID]*neighbor{}}
	in.ifaces = append(in.ifaces, i)
	return i.idx
}

// Iface returns interface state by index.
func (in *Instance) Iface(idx int) *Iface { return in.ifaces[idx] }

// AddStub originates a stub prefix (e.g. the loopback).
func (in *Instance) AddStub(p netpkt.Prefix) {
	in.stubs = append(in.stubs, p)
}

// RouterID returns the instance's router ID.
func (in *Instance) RouterID() RouterID { return in.cfg.RouterID }

// LSDBLen returns the number of LSAs in the database.
func (in *Instance) LSDBLen() int { return len(in.lsdb) }

// LSDB returns a snapshot of the database, sorted by key for determinism.
func (in *Instance) LSDB() []*LSA {
	out := make([]*LSA, 0, len(in.lsdb))
	for _, l := range in.lsdb {
		out = append(out, l.Clone())
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.Type != y.Type {
			return x.Type < y.Type
		}
		if x.ID != y.ID {
			return x.ID < y.ID
		}
		return x.Adv < y.Adv
	})
	return out
}

// Start brings all interfaces up: hellos go out and, on broadcast segments,
// DR election is scheduled after ElectionWait.
func (in *Instance) Start() {
	in.originateRouterLSA()
	for _, i := range in.ifaces {
		i.up = true
		in.sendHello(i)
		if i.cfg.Type == Broadcast {
			idx := i.idx
			in.clock.After(in.cfg.ElectionWait, func() { in.runElection(in.ifaces[idx]) })
		}
	}
}

// InterfaceDown simulates a link failure: adjacencies drop, LSAs
// re-originate, SPF reruns.
func (in *Instance) InterfaceDown(idx int) {
	i := in.ifaces[idx]
	if !i.up {
		return
	}
	i.up = false
	i.neighbors = map[RouterID]*neighbor{}
	wasDR := i.dr == in.cfg.RouterID
	i.dr, i.bdr, i.elected = 0, 0, false
	if wasDR {
		in.removeLSA(Key{Type: LSANetwork, ID: i.cfg.Addr.Addr & i.cfg.Addr.MaskIP(), Adv: in.cfg.RouterID})
	}
	in.originateRouterLSA()
	in.scheduleSPF()
}

// InterfaceUp restores a downed interface.
func (in *Instance) InterfaceUp(idx int) {
	i := in.ifaces[idx]
	if i.up {
		return
	}
	i.up = true
	in.sendHello(i)
	if i.cfg.Type == Broadcast {
		in.clock.After(in.cfg.ElectionWait, func() { in.runElection(i) })
	}
	in.originateRouterLSA()
}

func (in *Instance) sendHello(i *Iface) {
	h := &Hello{
		Router:   in.cfg.RouterID,
		Priority: i.cfg.Priority,
		DR:       i.dr,
		BDR:      i.bdr,
	}
	for id := range i.neighbors {
		h.Neighbors = append(h.Neighbors, id)
	}
	sort.Slice(h.Neighbors, func(a, b int) bool { return h.Neighbors[a] < h.Neighbors[b] })
	in.send(i.idx, 0, MarshalHello(h))
}

// HandlePacket processes an OSPF packet received on interface idx from the
// given source address.
func (in *Instance) HandlePacket(idx int, src netpkt.IP, data []byte) {
	in.mPktsIn.Inc()
	i := in.ifaces[idx]
	if !i.up {
		return
	}
	d, err := DecodePacket(data)
	if err != nil {
		in.hooks.Logf("ospf %s: drop packet on %s: %v", in.cfg.Name, i.cfg.Name, err)
		return
	}
	switch d.Type {
	case PktHello:
		in.handleHello(i, src, d.Hello)
	case PktLSUpdate:
		in.handleLSUpdate(i, d)
	}
}

func (in *Instance) handleHello(i *Iface, src netpkt.IP, h *Hello) {
	nbr := i.neighbors[h.Router]
	isNew := nbr == nil
	if isNew {
		nbr = &neighbor{id: h.Router, addr: src, priority: h.Priority, state: NbrInit}
		i.neighbors[h.Router] = nbr
	}
	nbr.addr, nbr.priority = src, h.Priority
	seesUs := false
	for _, n := range h.Neighbors {
		if n == in.cfg.RouterID {
			seesUs = true
			break
		}
	}
	transitioned := false
	if seesUs && nbr.state != NbrFull {
		nbr.state = NbrFull
		transitioned = true
	}
	if isNew || transitioned {
		// Our view changed: tell the segment.
		in.sendHello(i)
	}
	if transitioned {
		// Adjacency complete: exchange the full LSDB and re-originate.
		in.sendLSDB(i, h.Router)
		in.originateRouterLSA()
		if i.cfg.Type == Broadcast && i.elected {
			in.runElection(i)
		}
	}
}

// sendLSDB pushes the entire database to a newly adjacent neighbor
// (collapsing RFC 2328's DD/request/ack exchange onto the reliable link).
func (in *Instance) sendLSDB(i *Iface, dst RouterID) {
	if len(in.lsdb) == 0 {
		return
	}
	lsas := make([]*LSA, 0, len(in.lsdb))
	for _, l := range in.lsdb {
		lsas = append(lsas, l)
	}
	sort.Slice(lsas, func(a, b int) bool {
		x, y := lsas[a].Key(), lsas[b].Key()
		if x.Type != y.Type {
			return x.Type < y.Type
		}
		if x.Adv != y.Adv {
			return x.Adv < y.Adv
		}
		return x.ID < y.ID
	})
	in.send(i.idx, dst, MarshalLSUpdate(in.cfg.RouterID, lsas))
}

func (in *Instance) handleLSUpdate(i *Iface, d *DecodedPacket) {
	var fresh []*LSA
	for _, l := range d.LSAs {
		cur := in.lsdb[l.Key()]
		if cur != nil && cur.Seq >= l.Seq {
			continue // stale or duplicate
		}
		in.lsdb[l.Key()] = l
		fresh = append(fresh, l)
	}
	if len(fresh) == 0 {
		return
	}
	// Flood fresh LSAs to every other interface (and other neighbors of the
	// receiving segment are reached by the sender's own flood).
	for _, other := range in.ifaces {
		if other == i || !other.up || len(other.neighbors) == 0 {
			continue
		}
		in.send(other.idx, 0, MarshalLSUpdate(in.cfg.RouterID, fresh))
	}
	in.scheduleSPF()
}

// installLSA stores a self-originated LSA and floods it everywhere.
func (in *Instance) installLSA(l *LSA) {
	in.lsdb[l.Key()] = l
	for _, i := range in.ifaces {
		if i.up && len(i.neighbors) > 0 {
			in.send(i.idx, 0, MarshalLSUpdate(in.cfg.RouterID, []*LSA{l}))
		}
	}
	in.scheduleSPF()
}

func (in *Instance) removeLSA(k Key) {
	if _, ok := in.lsdb[k]; ok {
		// MaxAge flush condensed to an explicit empty re-origination.
		in.seq++
		var l *LSA
		if k.Type == LSARouter {
			l = &LSA{Type: k.Type, ID: k.ID, Adv: k.Adv, Seq: in.seq}
		} else {
			l = &LSA{Type: k.Type, ID: k.ID, Adv: k.Adv, Seq: in.seq}
		}
		in.lsdb[k] = l
		for _, i := range in.ifaces {
			if i.up && len(i.neighbors) > 0 {
				in.send(i.idx, 0, MarshalLSUpdate(in.cfg.RouterID, []*LSA{l}))
			}
		}
		in.scheduleSPF()
	}
}

// originateRouterLSA rebuilds and floods this router's LSA.
func (in *Instance) originateRouterLSA() {
	in.seq++
	l := &LSA{Type: LSARouter, ID: netpkt.IP(in.cfg.RouterID), Adv: in.cfg.RouterID, Seq: in.seq}
	for _, p := range in.stubs {
		l.Links = append(l.Links, Link{Type: LinkStub, ID: p.Addr, Data: uint32(p.Len), Cost: 0})
	}
	for _, i := range in.ifaces {
		if !i.up {
			continue
		}
		subnet := netpkt.Prefix{Addr: i.cfg.Addr.Addr & i.cfg.Addr.MaskIP(), Len: i.cfg.Addr.Len}
		switch i.cfg.Type {
		case P2P:
			full := false
			for _, n := range i.neighbors {
				if n.state == NbrFull {
					l.Links = append(l.Links, Link{Type: LinkP2P, ID: netpkt.IP(n.id), Data: uint32(i.cfg.Addr.Addr), Cost: i.cfg.Cost})
					full = true
				}
			}
			_ = full
			l.Links = append(l.Links, Link{Type: LinkStub, ID: subnet.Addr, Data: uint32(subnet.Len), Cost: i.cfg.Cost})
		case Broadcast:
			if i.dr != 0 && (i.dr == in.cfg.RouterID || in.fullWith(i, i.dr)) {
				l.Links = append(l.Links, Link{Type: LinkTransit, ID: subnet.Addr, Data: uint32(i.cfg.Addr.Addr), Cost: i.cfg.Cost})
			} else {
				l.Links = append(l.Links, Link{Type: LinkStub, ID: subnet.Addr, Data: uint32(subnet.Len), Cost: i.cfg.Cost})
			}
		}
	}
	in.installLSA(l)
}

func (in *Instance) fullWith(i *Iface, id RouterID) bool {
	n := i.neighbors[id]
	return n != nil && n.state == NbrFull
}

// runElection performs DR/BDR election on a broadcast interface
// (RFC 2328 §9.4, condensed: highest priority wins, router ID breaks ties).
func (in *Instance) runElection(i *Iface) {
	if !i.up {
		return
	}
	type cand struct {
		id       RouterID
		priority uint8
	}
	cands := []cand{{in.cfg.RouterID, i.cfg.Priority}}
	for _, n := range i.neighbors {
		cands = append(cands, cand{n.id, n.priority})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].priority != cands[b].priority {
			return cands[a].priority > cands[b].priority
		}
		return cands[a].id > cands[b].id
	})
	var dr, bdr RouterID
	for _, c := range cands {
		if c.priority == 0 {
			continue
		}
		if dr == 0 {
			dr = c.id
		} else if bdr == 0 {
			bdr = c.id
			break
		}
	}
	changed := dr != i.dr || bdr != i.bdr
	i.dr, i.bdr, i.elected = dr, bdr, true
	if changed {
		in.hooks.Logf("ospf %s: %s DR=%s BDR=%s", in.cfg.Name, i.cfg.Name, dr, bdr)
		in.sendHello(i)
		in.originateRouterLSA()
	}
	// The DR refreshes the Network LSA even when the election outcome is
	// stable, so late-joining routers get listed as attached.
	if dr == in.cfg.RouterID {
		in.originateNetworkLSA(i)
	}
}

// originateNetworkLSA emits the Network LSA for a segment this router is
// DR of.
func (in *Instance) originateNetworkLSA(i *Iface) {
	in.seq++
	subnet := i.cfg.Addr.Addr & i.cfg.Addr.MaskIP()
	l := &LSA{
		Type: LSANetwork, ID: subnet, Adv: in.cfg.RouterID, Seq: in.seq,
		MaskLen:  i.cfg.Addr.Len,
		Attached: []RouterID{in.cfg.RouterID},
	}
	ids := make([]RouterID, 0, len(i.neighbors))
	for id, n := range i.neighbors {
		if n.state == NbrFull {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	l.Attached = append(l.Attached, ids...)
	in.installLSA(l)
}

func (in *Instance) scheduleSPF() {
	if in.spfTimer != nil {
		return
	}
	in.spfTimer = in.clock.After(in.cfg.SPFDelay, func() {
		in.spfTimer = nil
		in.runSPF()
	})
}
