package ospf

import (
	"container/heap"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
)

// nodeKey identifies a vertex of the SPF graph: a router or a transit
// network segment.
type nodeKey struct {
	net bool
	id  netpkt.IP // router ID, or network subnet address
}

type spfItem struct {
	key   nodeKey
	dist  uint32
	index int
}

type spfQueue []*spfItem

func (q spfQueue) Len() int           { return len(q) }
func (q spfQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q spfQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *spfQueue) Push(x any)        { it := x.(*spfItem); it.index = len(*q); *q = append(*q, it) }
func (q *spfQueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// edge is one usable (bidirectionally verified) SPF edge.
type edge struct {
	to   nodeKey
	cost uint32
	// viaAddr is the target router's interface address on the shared
	// medium — the next-hop address when the source is self or a directly
	// attached network.
	viaAddr netpkt.IP
}

// runSPF recomputes shortest paths over the LSDB and reconciles the routing
// table (RFC 2328 §16, condensed to intra-area router/network/stub routes).
func (in *Instance) runSPF() {
	in.mSPFRuns.Inc()
	routers := map[RouterID]*LSA{}
	networks := map[netpkt.IP]*LSA{}
	for k, l := range in.lsdb {
		switch k.Type {
		case LSARouter:
			if len(l.Links) > 0 {
				routers[l.Adv] = l
			}
		case LSANetwork:
			if len(l.Attached) > 0 {
				networks[l.ID] = l
			}
		}
	}

	edgesFrom := func(k nodeKey) []edge {
		var out []edge
		if k.net {
			nl := networks[k.id]
			if nl == nil {
				return nil
			}
			for _, r := range nl.Attached {
				rl := routers[r]
				if rl == nil {
					continue
				}
				// Bidirectional check: router lists transit to this net.
				for _, ln := range rl.Links {
					if ln.Type == LinkTransit && ln.ID == k.id {
						out = append(out, edge{to: nodeKey{id: netpkt.IP(r)}, cost: 0, viaAddr: netpkt.IP(ln.Data)})
					}
				}
			}
			return out
		}
		rl := routers[RouterID(k.id)]
		if rl == nil {
			return nil
		}
		for _, ln := range rl.Links {
			switch ln.Type {
			case LinkP2P:
				tl := routers[RouterID(ln.ID)]
				if tl == nil {
					continue
				}
				for _, back := range tl.Links {
					if back.Type == LinkP2P && back.ID == k.id {
						out = append(out, edge{to: nodeKey{id: ln.ID}, cost: uint32(ln.Cost), viaAddr: netpkt.IP(back.Data)})
						break
					}
				}
			case LinkTransit:
				if networks[ln.ID] != nil {
					out = append(out, edge{to: nodeKey{net: true, id: ln.ID}, cost: uint32(ln.Cost)})
				}
			}
		}
		return out
	}

	// Dijkstra from self.
	self := nodeKey{id: netpkt.IP(in.cfg.RouterID)}
	dist := map[nodeKey]uint32{self: 0}
	hops := map[nodeKey][]rib.NextHop{}
	items := map[nodeKey]*spfItem{}
	q := &spfQueue{}
	start := &spfItem{key: self, dist: 0}
	heap.Push(q, start)
	items[self] = start
	visited := map[nodeKey]bool{}

	for q.Len() > 0 {
		it := heap.Pop(q).(*spfItem)
		if visited[it.key] {
			continue
		}
		visited[it.key] = true
		for _, e := range edgesFrom(it.key) {
			nd := it.dist + e.cost
			cur, seen := dist[e.to]
			if seen && nd > cur {
				continue
			}
			// Determine the first hop(s) for this path.
			var h []rib.NextHop
			if it.key == self || (it.key.net && hops[it.key] == nil) {
				// Direct neighbor (router over p2p, or router across a
				// directly attached segment).
				if e.viaAddr != 0 {
					if ifc := in.ifaceFor(e.viaAddr); ifc != nil {
						h = []rib.NextHop{{IP: e.viaAddr, Interface: ifc.cfg.Name}}
					}
				}
			} else {
				h = hops[it.key]
			}
			if !seen || nd < cur {
				dist[e.to] = nd
				hops[e.to] = append([]rib.NextHop(nil), h...)
				ni := &spfItem{key: e.to, dist: nd}
				items[e.to] = ni
				heap.Push(q, ni)
			} else { // equal cost: merge first hops (ECMP)
				hops[e.to] = mergeHops(hops[e.to], h)
			}
		}
	}

	// Collect candidate prefixes.
	type cand struct {
		dist uint32
		hops []rib.NextHop
	}
	best := map[netpkt.Prefix]cand{}
	consider := func(p netpkt.Prefix, d uint32, h []rib.NextHop) {
		if len(h) == 0 || in.isLocal(p) {
			return
		}
		cur, ok := best[p]
		if !ok || d < cur.dist {
			best[p] = cand{dist: d, hops: append([]rib.NextHop(nil), h...)}
		} else if d == cur.dist {
			cur.hops = mergeHops(cur.hops, h)
			best[p] = cur
		}
	}
	for r, rl := range routers {
		k := nodeKey{id: netpkt.IP(r)}
		d, ok := dist[k]
		if !ok || r == in.cfg.RouterID {
			continue
		}
		for _, ln := range rl.Links {
			if ln.Type == LinkStub {
				p := netpkt.Prefix{Addr: ln.ID, Len: uint8(ln.Data)}
				p.Addr &= p.MaskIP()
				consider(p, d+uint32(ln.Cost), hops[k])
			}
		}
	}
	for id, nl := range networks {
		k := nodeKey{net: true, id: id}
		d, ok := dist[k]
		if !ok {
			continue
		}
		p := netpkt.Prefix{Addr: id, Len: nl.MaskLen}
		p.Addr &= p.MaskIP()
		consider(p, d, hops[k])
	}

	// Reconcile with what is installed.
	for p, c := range best {
		prev, ok := in.installed[p]
		if ok && hopSetEqual(prev, c.hops) {
			continue
		}
		if err := in.hooks.InstallRoute(p, c.hops); err != nil {
			in.hooks.Logf("ospf %s: install %s failed: %v", in.cfg.Name, p, err)
			continue
		}
		in.installed[p] = c.hops
	}
	for p := range in.installed {
		if _, ok := best[p]; !ok {
			in.hooks.RemoveRoute(p)
			delete(in.installed, p)
		}
	}
}

// Routes returns the currently installed OSPF routes.
func (in *Instance) Routes() map[netpkt.Prefix][]rib.NextHop {
	out := make(map[netpkt.Prefix][]rib.NextHop, len(in.installed))
	for p, h := range in.installed {
		out[p] = append([]rib.NextHop(nil), h...)
	}
	return out
}

// ifaceFor returns the up interface whose subnet covers ip.
func (in *Instance) ifaceFor(ip netpkt.IP) *Iface {
	for _, i := range in.ifaces {
		if i.up && i.cfg.Addr.Contains(ip) {
			return i
		}
	}
	return nil
}

// isLocal reports whether p is one of our own stubs or interface subnets.
func (in *Instance) isLocal(p netpkt.Prefix) bool {
	for _, s := range in.stubs {
		if s == p {
			return true
		}
	}
	for _, i := range in.ifaces {
		sub := netpkt.Prefix{Addr: i.cfg.Addr.Addr & i.cfg.Addr.MaskIP(), Len: i.cfg.Addr.Len}
		if sub == p {
			return true
		}
	}
	return false
}

func mergeHops(a, b []rib.NextHop) []rib.NextHop {
	out := append([]rib.NextHop(nil), a...)
	for _, h := range b {
		dup := false
		for _, x := range out {
			if x == h {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, h)
		}
	}
	return out
}

func hopSetEqual(a, b []rib.NextHop) bool {
	if len(a) != len(b) {
		return false
	}
	for _, h := range a {
		found := false
		for _, x := range b {
			if x == h {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
