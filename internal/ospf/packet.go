// Package ospf implements the OSPFv2 control plane used by the emulator's
// WAN and backbone devices: hello-based adjacency bring-up, DR/BDR election
// on broadcast segments (the state Proposition 5.4's boundary condition
// depends on), LSDB flooding, and Dijkstra SPF route computation.
//
// The implementation condenses RFC 2328 where the emulator's reliable
// virtual links make machinery redundant (no retransmission lists, no
// checksum ageing), but packet formats are real binary encodings and the
// flooding/SPF semantics are faithful.
//
// DESIGN.md §2 places this substrate in the inventory; §4 records the
// RFC-condensation decisions.
package ospf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"crystalnet/internal/netpkt"
)

// Packet types (RFC 2328 §4.3; database description and ack packets are
// subsumed by full-LSDB exchange on adjacency).
const (
	PktHello    uint8 = 1
	PktLSUpdate uint8 = 4
)

// ErrTruncated indicates a short OSPF packet.
var ErrTruncated = errors.New("ospf: truncated packet")

// RouterID identifies an OSPF router (its loopback address by convention).
type RouterID = netpkt.IP

// Hello is an OSPF Hello packet.
type Hello struct {
	Router    RouterID
	Priority  uint8
	DR, BDR   RouterID
	Neighbors []RouterID // router IDs seen on this segment
}

// LSAType distinguishes LSA kinds.
type LSAType uint8

// Supported LSA types.
const (
	LSARouter  LSAType = 1
	LSANetwork LSAType = 2
)

// LinkType classifies one link in a router LSA.
type LinkType uint8

// Router-LSA link types (RFC 2328 §A.4.2).
const (
	LinkP2P     LinkType = 1
	LinkTransit LinkType = 2
	LinkStub    LinkType = 3
)

// Link is one entry in a router LSA.
type Link struct {
	Type LinkType
	// ID is the neighbor router ID (P2P), the DR interface address
	// (Transit), or the network address (Stub).
	ID netpkt.IP
	// Data is the local interface address (P2P/Transit) or the netmask
	// length (Stub, stored in the low byte).
	Data uint32
	Cost uint16
}

// LSA is a link-state advertisement.
type LSA struct {
	Type LSAType
	// ID is the advertising router ID (Router LSA) or the DR interface
	// address (Network LSA).
	ID  netpkt.IP
	Adv RouterID
	Seq uint32
	// Links is populated for Router LSAs.
	Links []Link
	// Mask and Attached are populated for Network LSAs.
	MaskLen  uint8
	Attached []RouterID
}

// Key identifies an LSA instance in the LSDB.
type Key struct {
	Type LSAType
	ID   netpkt.IP
	Adv  RouterID
}

// Key returns the LSDB key of the LSA.
func (l *LSA) Key() Key { return Key{Type: l.Type, ID: l.ID, Adv: l.Adv} }

// Clone returns a deep copy.
func (l *LSA) Clone() *LSA {
	c := *l
	c.Links = append([]Link(nil), l.Links...)
	c.Attached = append([]RouterID(nil), l.Attached...)
	return &c
}

// String formats the LSA for logs.
func (l *LSA) String() string {
	if l.Type == LSARouter {
		return fmt.Sprintf("rtr-lsa adv=%s seq=%d links=%d", l.Adv, l.Seq, len(l.Links))
	}
	return fmt.Sprintf("net-lsa id=%s adv=%s seq=%d attached=%d", l.ID, l.Adv, l.Seq, len(l.Attached))
}

// MarshalHello encodes a Hello packet with the common OSPF header. Body
// layout: priority(1) dr(4) bdr(4) neighbors(4 each).
func MarshalHello(h *Hello) []byte {
	b := make([]byte, 24+9+4*len(h.Neighbors))
	putHeader(b, PktHello, h.Router)
	p := b[24:]
	p[0] = h.Priority
	binary.BigEndian.PutUint32(p[1:5], uint32(h.DR))
	binary.BigEndian.PutUint32(p[5:9], uint32(h.BDR))
	for i, n := range h.Neighbors {
		binary.BigEndian.PutUint32(p[9+4*i:13+4*i], uint32(n))
	}
	return b
}

// MarshalLSUpdate encodes a set of LSAs.
func MarshalLSUpdate(router RouterID, lsas []*LSA) []byte {
	body := make([]byte, 4)
	binary.BigEndian.PutUint32(body, uint32(len(lsas)))
	for _, l := range lsas {
		body = append(body, marshalLSA(l)...)
	}
	b := make([]byte, 24+len(body))
	putHeader(b, PktLSUpdate, router)
	copy(b[24:], body)
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	return b
}

func putHeader(b []byte, typ uint8, router RouterID) {
	b[0] = 2 // version
	b[1] = typ
	binary.BigEndian.PutUint16(b[2:4], uint16(len(b)))
	binary.BigEndian.PutUint32(b[4:8], uint32(router))
	// area 0, checksum 0, auth none: bytes 8..23 zero.
}

func marshalLSA(l *LSA) []byte {
	// header: type(1) id(4) adv(4) seq(4) count(2)
	b := make([]byte, 15)
	b[0] = byte(l.Type)
	binary.BigEndian.PutUint32(b[1:5], uint32(l.ID))
	binary.BigEndian.PutUint32(b[5:9], uint32(l.Adv))
	binary.BigEndian.PutUint32(b[9:13], l.Seq)
	switch l.Type {
	case LSARouter:
		binary.BigEndian.PutUint16(b[13:15], uint16(len(l.Links)))
		for _, ln := range l.Links {
			var e [11]byte
			e[0] = byte(ln.Type)
			binary.BigEndian.PutUint32(e[1:5], uint32(ln.ID))
			binary.BigEndian.PutUint32(e[5:9], ln.Data)
			binary.BigEndian.PutUint16(e[9:11], ln.Cost)
			b = append(b, e[:]...)
		}
	case LSANetwork:
		binary.BigEndian.PutUint16(b[13:15], uint16(len(l.Attached)))
		b = append(b, l.MaskLen)
		for _, r := range l.Attached {
			var e [4]byte
			binary.BigEndian.PutUint32(e[:], uint32(r))
			b = append(b, e[:]...)
		}
	}
	return b
}

func parseLSA(b []byte) (*LSA, []byte, error) {
	if len(b) < 15 {
		return nil, nil, ErrTruncated
	}
	l := &LSA{
		Type: LSAType(b[0]),
		ID:   netpkt.IP(binary.BigEndian.Uint32(b[1:5])),
		Adv:  RouterID(binary.BigEndian.Uint32(b[5:9])),
		Seq:  binary.BigEndian.Uint32(b[9:13]),
	}
	n := int(binary.BigEndian.Uint16(b[13:15]))
	rest := b[15:]
	switch l.Type {
	case LSARouter:
		if len(rest) < 11*n {
			return nil, nil, ErrTruncated
		}
		for i := 0; i < n; i++ {
			e := rest[11*i:]
			l.Links = append(l.Links, Link{
				Type: LinkType(e[0]),
				ID:   netpkt.IP(binary.BigEndian.Uint32(e[1:5])),
				Data: binary.BigEndian.Uint32(e[5:9]),
				Cost: binary.BigEndian.Uint16(e[9:11]),
			})
		}
		rest = rest[11*n:]
	case LSANetwork:
		if len(rest) < 1+4*n {
			return nil, nil, ErrTruncated
		}
		l.MaskLen = rest[0]
		for i := 0; i < n; i++ {
			l.Attached = append(l.Attached, RouterID(binary.BigEndian.Uint32(rest[1+4*i:5+4*i])))
		}
		rest = rest[1+4*n:]
	default:
		return nil, nil, fmt.Errorf("ospf: unknown LSA type %d", l.Type)
	}
	return l, rest, nil
}

// DecodedPacket is a parsed OSPF packet.
type DecodedPacket struct {
	Type   uint8
	Router RouterID
	Hello  *Hello
	LSAs   []*LSA
}

// DecodePacket parses an OSPF packet.
func DecodePacket(b []byte) (*DecodedPacket, error) {
	if len(b) < 24 {
		return nil, ErrTruncated
	}
	if b[0] != 2 {
		return nil, fmt.Errorf("ospf: bad version %d", b[0])
	}
	d := &DecodedPacket{Type: b[1], Router: RouterID(binary.BigEndian.Uint32(b[4:8]))}
	body := b[24:]
	switch d.Type {
	case PktHello:
		if len(body) < 9 {
			return nil, ErrTruncated
		}
		h := &Hello{
			Router:   d.Router,
			Priority: body[0],
			DR:       RouterID(binary.BigEndian.Uint32(body[1:5])),
			BDR:      RouterID(binary.BigEndian.Uint32(body[5:9])),
		}
		for rest := body[9:]; len(rest) >= 4; rest = rest[4:] {
			h.Neighbors = append(h.Neighbors, RouterID(binary.BigEndian.Uint32(rest[:4])))
		}
		d.Hello = h
		return d, nil
	case PktLSUpdate:
		if len(body) < 4 {
			return nil, ErrTruncated
		}
		n := int(binary.BigEndian.Uint32(body[:4]))
		rest := body[4:]
		for i := 0; i < n; i++ {
			var l *LSA
			var err error
			l, rest, err = parseLSA(rest)
			if err != nil {
				return nil, err
			}
			d.LSAs = append(d.LSAs, l)
		}
		return d, nil
	default:
		return nil, fmt.Errorf("ospf: unknown packet type %d", d.Type)
	}
}
