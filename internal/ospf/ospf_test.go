package ospf

import (
	"testing"
	"time"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
	"crystalnet/internal/sim"
)

func ip(s string) netpkt.IP      { return netpkt.MustParseIP(s) }
func pfx(s string) netpkt.Prefix { return netpkt.MustParsePrefix(s) }

// ---- codec tests ----

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{
		Router: ip("10.0.0.1"), Priority: 5,
		DR: ip("10.0.0.9"), BDR: ip("10.0.0.8"),
		Neighbors: []RouterID{ip("10.0.0.2"), ip("10.0.0.3")},
	}
	d, err := DecodePacket(MarshalHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if d.Type != PktHello || d.Router != h.Router {
		t.Fatalf("header mismatch: %+v", d)
	}
	g := d.Hello
	if g.Priority != 5 || g.DR != h.DR || g.BDR != h.BDR || len(g.Neighbors) != 2 ||
		g.Neighbors[0] != h.Neighbors[0] || g.Neighbors[1] != h.Neighbors[1] {
		t.Fatalf("hello mismatch: %+v", g)
	}
}

func TestLSUpdateRoundTrip(t *testing.T) {
	lsas := []*LSA{
		{
			Type: LSARouter, ID: ip("10.0.0.1"), Adv: ip("10.0.0.1"), Seq: 7,
			Links: []Link{
				{Type: LinkP2P, ID: ip("10.0.0.2"), Data: uint32(ip("10.128.0.0")), Cost: 10},
				{Type: LinkStub, ID: ip("10.9.0.0"), Data: 24, Cost: 1},
			},
		},
		{
			Type: LSANetwork, ID: ip("10.200.0.0"), Adv: ip("10.0.0.1"), Seq: 3,
			MaskLen: 24, Attached: []RouterID{ip("10.0.0.1"), ip("10.0.0.2")},
		},
	}
	d, err := DecodePacket(MarshalLSUpdate(ip("10.0.0.1"), lsas))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.LSAs) != 2 {
		t.Fatalf("LSAs = %d", len(d.LSAs))
	}
	r := d.LSAs[0]
	if r.Type != LSARouter || r.Seq != 7 || len(r.Links) != 2 || r.Links[1].Data != 24 {
		t.Fatalf("router LSA mismatch: %+v", r)
	}
	n := d.LSAs[1]
	if n.Type != LSANetwork || n.MaskLen != 24 || len(n.Attached) != 2 {
		t.Fatalf("network LSA mismatch: %+v", n)
	}
	if r.Key() == n.Key() {
		t.Fatal("keys must differ")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodePacket([]byte{1, 2}); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	b := MarshalHello(&Hello{Router: 1})
	b[0] = 3
	if _, err := DecodePacket(b); err == nil {
		t.Fatal("bad version accepted")
	}
	b = MarshalHello(&Hello{Router: 1})
	b[1] = 99
	if _, err := DecodePacket(b); err == nil {
		t.Fatal("bad type accepted")
	}
}

// ---- harness: instances over a simulated fabric ----

type onode struct {
	name string
	in   *Instance
	fib  map[netpkt.Prefix][]rib.NextHop
	// wires[i] maps local iface i to the segment it attaches to.
	wires []*segment
}

type segment struct {
	// members: (node, ifaceIdx, addr)
	members []segMember
}

type segMember struct {
	node  *onode
	iface int
	addr  netpkt.IP
	rid   RouterID
}

type onet struct {
	t     *testing.T
	eng   *sim.Engine
	nodes map[string]*onode
}

type oclock struct{ e *sim.Engine }

func (c oclock) After(d time.Duration, fn func()) Timer { return c.e.After(d, fn) }

func newOnet(t *testing.T) *onet {
	return &onet{t: t, eng: sim.NewEngine(1), nodes: map[string]*onode{}}
}

func (n *onet) add(name string, rid string) *onode {
	nd := &onode{name: name, fib: map[netpkt.Prefix][]rib.NextHop{}}
	nd.in = New(Config{Name: name, RouterID: ip(rid)}, oclock{n.eng}, Hooks{
		Send: func(ifaceIdx int, dst RouterID, data []byte) {
			seg := nd.wires[ifaceIdx]
			var srcAddr netpkt.IP
			for _, m := range seg.members {
				if m.node == nd {
					srcAddr = m.addr
				}
			}
			for _, m := range seg.members {
				m := m
				if m.node == nd {
					continue
				}
				if dst != 0 && m.rid != dst {
					continue
				}
				n.eng.After(time.Millisecond, func() {
					m.node.in.HandlePacket(m.iface, srcAddr, data)
				})
			}
		},
		InstallRoute: func(p netpkt.Prefix, nhs []rib.NextHop) error {
			nd.fib[p] = nhs
			return nil
		},
		RemoveRoute: func(p netpkt.Prefix) { delete(nd.fib, p) },
	})
	nd.in.AddStub(netpkt.Prefix{Addr: ip(rid), Len: 32})
	n.nodes[name] = nd
	return nd
}

var osubnet uint32 = 0x0A800000 // 10.128.0.0, /31 or /24 carved sequentially

// p2p joins two nodes with a /31.
func (n *onet) p2p(aName, bName string, cost uint16) {
	a, b := n.nodes[aName], n.nodes[bName]
	base := netpkt.IP(osubnet)
	osubnet += 256
	seg := &segment{}
	ai := a.in.AddInterface(IfaceConfig{Name: ifname(len(a.wires)), Addr: netpkt.Prefix{Addr: base, Len: 31}, Type: P2P, Cost: cost})
	bi := b.in.AddInterface(IfaceConfig{Name: ifname(len(b.wires)), Addr: netpkt.Prefix{Addr: base + 1, Len: 31}, Type: P2P, Cost: cost})
	seg.members = []segMember{
		{node: a, iface: ai, addr: base, rid: a.in.RouterID()},
		{node: b, iface: bi, addr: base + 1, rid: b.in.RouterID()},
	}
	a.wires = append(a.wires, seg)
	b.wires = append(b.wires, seg)
}

// lan joins several nodes on one broadcast /24.
func (n *onet) lan(names []string, prios []uint8) {
	base := netpkt.IP(osubnet)
	osubnet += 256
	seg := &segment{}
	for i, name := range names {
		nd := n.nodes[name]
		addr := base + netpkt.IP(i) + 1
		idx := nd.in.AddInterface(IfaceConfig{
			Name: ifname(len(nd.wires)), Addr: netpkt.Prefix{Addr: addr, Len: 24},
			Type: Broadcast, Cost: 10, Priority: prios[i],
		})
		seg.members = append(seg.members, segMember{node: nd, iface: idx, addr: addr, rid: nd.in.RouterID()})
		nd.wires = append(nd.wires, seg)
	}
}

func ifname(i int) string { return []string{"et0", "et1", "et2", "et3", "et4", "et5"}[i] }

func (n *onet) start() {
	for _, nd := range n.nodes {
		nd.in.Start()
	}
	if _, err := n.eng.Run(500_000); err != nil {
		n.t.Fatalf("ospf did not converge: %v", err)
	}
}

// ---- behaviour tests ----

func TestP2PAdjacencyAndRoute(t *testing.T) {
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	b := n.add("b", "10.0.0.2")
	n.p2p("a", "b", 10)
	n.start()

	// Each learns the other's loopback.
	if hops, ok := a.fib[pfx("10.0.0.2/32")]; !ok || len(hops) != 1 {
		t.Fatalf("a FIB: %v", a.fib)
	}
	if _, ok := b.fib[pfx("10.0.0.1/32")]; !ok {
		t.Fatalf("b FIB: %v", b.fib)
	}
	// LSDBs are synchronized.
	if a.in.LSDBLen() != b.in.LSDBLen() {
		t.Fatalf("LSDB sizes differ: %d vs %d", a.in.LSDBLen(), b.in.LSDBLen())
	}
}

func TestLineTopologyTransit(t *testing.T) {
	// a - b - c: a must reach c's loopback via b.
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	n.add("b", "10.0.0.2")
	c := n.add("c", "10.0.0.3")
	n.p2p("a", "b", 10)
	n.p2p("b", "c", 10)
	n.start()

	hops, ok := a.fib[pfx("10.0.0.3/32")]
	if !ok || len(hops) != 1 {
		t.Fatalf("a cannot reach c: %v", a.fib)
	}
	if hops[0].Interface != "et0" {
		t.Fatalf("wrong egress: %+v", hops)
	}
	// c's p2p subnet to b is also known to a.
	found := false
	for p := range a.fib {
		if p.Len == 31 && p.Contains(hops[0].IP) == false {
			found = true
		}
	}
	if !found {
		t.Fatalf("remote p2p stub missing from a's table: %v", a.fib)
	}
	if _, ok := c.fib[pfx("10.0.0.1/32")]; !ok {
		t.Fatal("reverse direction broken")
	}
}

func TestCostAffectsPathChoice(t *testing.T) {
	// a-b cost 100 direct; a-c-b cost 10+10: SPF must go via c.
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	n.add("b", "10.0.0.2")
	n.add("c", "10.0.0.3")
	n.p2p("a", "b", 100)
	n.p2p("a", "c", 10)
	n.p2p("c", "b", 10)
	n.start()

	hops := a.fib[pfx("10.0.0.2/32")]
	if len(hops) != 1 || hops[0].Interface != "et1" {
		t.Fatalf("a routes to b via %v, want via c (et1)", hops)
	}
}

func TestECMPEqualCost(t *testing.T) {
	// a reaches d via b and c at equal cost.
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	n.add("b", "10.0.0.2")
	n.add("c", "10.0.0.3")
	n.add("d", "10.0.0.4")
	n.p2p("a", "b", 10)
	n.p2p("a", "c", 10)
	n.p2p("b", "d", 10)
	n.p2p("c", "d", 10)
	n.start()

	hops := a.fib[pfx("10.0.0.4/32")]
	if len(hops) != 2 {
		t.Fatalf("ECMP hops = %v, want 2", hops)
	}
}

func TestDRBDRElection(t *testing.T) {
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	b := n.add("b", "10.0.0.2")
	c := n.add("c", "10.0.0.3")
	n.lan([]string{"a", "b", "c"}, []uint8{1, 1, 1})
	n.start()

	// Highest router ID wins with equal priorities: c is DR, b is BDR.
	for _, nd := range []*onode{a, b, c} {
		i := nd.in.Iface(0)
		if i.DR() != ip("10.0.0.3") {
			t.Fatalf("%s sees DR=%v, want c", nd.name, i.DR())
		}
		if i.BDR() != ip("10.0.0.2") {
			t.Fatalf("%s sees BDR=%v, want b", nd.name, i.BDR())
		}
	}
	// Routes across the LAN: a reaches b and c loopbacks.
	if _, ok := a.fib[pfx("10.0.0.2/32")]; !ok {
		t.Fatalf("a missing b loopback: %v", a.fib)
	}
	if _, ok := a.fib[pfx("10.0.0.3/32")]; !ok {
		t.Fatal("a missing c loopback")
	}
}

func TestElectionPriorityWins(t *testing.T) {
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	n.add("b", "10.0.0.2")
	n.add("c", "10.0.0.3")
	n.lan([]string{"a", "b", "c"}, []uint8{10, 1, 1}) // a has top priority
	n.start()
	if a.in.Iface(0).DR() != ip("10.0.0.1") {
		t.Fatalf("DR = %v, want a (priority 10)", a.in.Iface(0).DR())
	}
}

func TestPriorityZeroNeverDR(t *testing.T) {
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	n.add("b", "10.0.0.2")
	n.lan([]string{"a", "b"}, []uint8{0, 1})
	n.start()
	if dr := a.in.Iface(0).DR(); dr != ip("10.0.0.2") {
		t.Fatalf("DR = %v, want b (a has priority 0)", dr)
	}
}

func TestLinkFailureReroutes(t *testing.T) {
	// Square: a-b, b-d, a-c, c-d. Fail a-b; a must reroute to d via c.
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	b := n.add("b", "10.0.0.2")
	n.add("c", "10.0.0.3")
	n.add("d", "10.0.0.4")
	n.p2p("a", "b", 1) // preferred
	n.p2p("b", "d", 1)
	n.p2p("a", "c", 10)
	n.p2p("c", "d", 10)
	n.start()

	if hops := a.fib[pfx("10.0.0.4/32")]; len(hops) != 1 || hops[0].Interface != "et0" {
		t.Fatalf("setup: a to d = %v, want via b", hops)
	}
	// Fail the a-b link on both ends.
	a.in.InterfaceDown(0)
	b.in.InterfaceDown(0)
	if _, err := n.eng.Run(500_000); err != nil {
		t.Fatal(err)
	}
	hops := a.fib[pfx("10.0.0.4/32")]
	if len(hops) != 1 || hops[0].Interface != "et1" {
		t.Fatalf("after failure a to d = %v, want via c (et1)", hops)
	}
	// b's loopback is still reachable the long way.
	if _, ok := a.fib[pfx("10.0.0.2/32")]; !ok {
		t.Fatal("b unreachable after single link failure")
	}
}

func TestInterfaceUpRestores(t *testing.T) {
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	b := n.add("b", "10.0.0.2")
	n.p2p("a", "b", 1)
	n.start()
	a.in.InterfaceDown(0)
	b.in.InterfaceDown(0)
	n.eng.Run(500_000)
	if _, ok := a.fib[pfx("10.0.0.2/32")]; ok {
		t.Fatal("route survived link failure")
	}
	a.in.InterfaceUp(0)
	b.in.InterfaceUp(0)
	n.eng.Run(500_000)
	if _, ok := a.fib[pfx("10.0.0.2/32")]; !ok {
		t.Fatal("route not restored after interface up")
	}
}

func TestStubPrefixPropagation(t *testing.T) {
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	b := n.add("b", "10.0.0.2")
	b.in.AddStub(pfx("100.64.7.0/24"))
	n.p2p("a", "b", 10)
	n.start()
	if _, ok := a.fib[pfx("100.64.7.0/24")]; !ok {
		t.Fatalf("stub prefix not learned: %v", a.fib)
	}
	// Local stubs are never self-installed.
	if _, ok := b.fib[pfx("100.64.7.0/24")]; ok {
		t.Fatal("local stub installed into own FIB")
	}
}

func TestLSDBSnapshotSortedAndDeep(t *testing.T) {
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	n.add("b", "10.0.0.2")
	n.p2p("a", "b", 10)
	n.start()
	snap := a.in.LSDB()
	if len(snap) != a.in.LSDBLen() {
		t.Fatal("snapshot incomplete")
	}
	for i := 1; i < len(snap); i++ {
		x, y := snap[i-1], snap[i]
		if x.Type > y.Type || (x.Type == y.Type && x.ID > y.ID) {
			t.Fatal("snapshot not sorted")
		}
	}
	if len(snap[0].Links) > 0 {
		snap[0].Links[0].Cost = 9999
		if a.in.LSDB()[0].Links[0].Cost == 9999 {
			t.Fatal("snapshot aliases LSDB")
		}
	}
	if snap[0].String() == "" {
		t.Fatal("LSA String empty")
	}
}

func TestRoutesAccessor(t *testing.T) {
	n := newOnet(t)
	a := n.add("a", "10.0.0.1")
	n.add("b", "10.0.0.2")
	n.p2p("a", "b", 10)
	n.start()
	routes := a.in.Routes()
	if len(routes) == 0 {
		t.Fatal("Routes empty")
	}
	for p, h := range routes {
		h[0].IP = 0
		if a.in.Routes()[p][0].IP == 0 {
			t.Fatal("Routes aliases internal state")
		}
		break
	}
}
