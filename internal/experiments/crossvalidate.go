package experiments

import (
	"fmt"
	"time"

	"crystalnet/internal/batfish"
	"crystalnet/internal/config"
	"crystalnet/internal/core"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/parallel"
	"crystalnet/internal/rib"
	"crystalnet/internal/topo"
)

// CrossValidateResult reproduces the §9 cross-validation findings: the
// strict FIB comparator flags ECMP/arrival-order non-determinism that the
// ECMP-aware comparator correctly tolerates, and the emulation agrees with
// the idealized config model on a healthy fabric.
type CrossValidateResult struct {
	// StrictDiffs/ECMPAwareDiffs compare two emulation runs of the same
	// fabric whose ToR firmware tie-breaks by arrival order (§9).
	StrictDiffs    int
	ECMPAwareDiffs int
	// VerifierAgreement is the fraction of (device, ToR-prefix) FIB entries
	// where the emulation and the Batfish-style model overlap in next hops
	// on a healthy fabric (§10: verification as the first, low-fidelity
	// check).
	VerifierAgreement float64
	ComparedEntries   int
}

// crossValidateFabric is the small Clos used for the comparison runs: four
// spines per plane so a width-limited ECMP group is a strict subset of the
// candidates (the §9 situation).
func crossValidateFabric() *topo.Network {
	return topo.GenerateClos(topo.ClosSpec{
		Name: "xval", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
		SpineGroups: 1, SpinesPerPlane: 4, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	})
}

// nonDetImages gives the leaf/spine firmware an arrival-order tie-break.
func nonDetImages() map[string]firmware.VendorImage {
	leaf := fastImage("ctnra", firmware.Bugs{})
	leaf.NonDeterministicTies = true
	// Extra boot jitter so the two runs see different arrival orders.
	leaf.BootJitter = 2 * time.Minute
	return map[string]firmware.VendorImage{
		"ctnrb": fastImage("ctnrb", firmware.Bugs{}),
		"ctnra": leaf,
	}
}

func runForFIBs(seed int64, limitLeafECMP bool) (*core.Emulation, map[string]rib.Snapshot) {
	n := crossValidateFabric()
	o := core.New(core.Options{Seed: seed})
	prep, err := o.Prepare(core.PrepareInput{Network: n, Images: nonDetImages()})
	if err != nil {
		panic(err)
	}
	if limitLeafECMP {
		// Leaves use 3-wide ECMP over 4 spine candidates: any two runs'
		// groups overlap, but which 3 they pick follows arrival order.
		for name, cfg := range prep.Configs {
			if n.MustDevice(name).Layer == topo.LayerLeaf {
				cfg.MaxPaths = 3
			}
		}
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		panic(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		panic(err)
	}
	return em, em.PullFIBs()
}

// CrossValidate runs the comparisons. An optional workers argument bounds
// the pool fanning the three independent emulation runs across cores
// (default GOMAXPROCS).
func CrossValidate(workers ...int) CrossValidateResult {
	res := CrossValidateResult{}

	w := 0
	if len(workers) > 0 {
		w = workers[0]
	}
	type run struct {
		em   *core.Emulation
		fibs map[string]rib.Snapshot
	}
	// Two runs, different seeds: boot order differs, so the arrival-order
	// tie-break picks different single paths on the ToRs. The third is the
	// healthy fabric compared against the idealized verifier below. Each is
	// an independent engine, so they fan across the pool.
	seeds := []struct {
		seed  int64
		limit bool
	}{{101, true}, {202, true}, {303, false}}
	runs := parallel.Map(len(seeds), w, func(i int) run {
		em, fibs := runForFIBs(seeds[i].seed, seeds[i].limit)
		return run{em: em, fibs: fibs}
	})
	fibsA, fibsB := runs[0].fibs, runs[1].fibs
	for name := range fibsA {
		res.StrictDiffs += len(rib.Compare(bgpOnly(fibsA[name]), bgpOnly(fibsB[name]), rib.Strict))
		res.ECMPAwareDiffs += len(rib.Compare(bgpOnly(fibsA[name]), bgpOnly(fibsB[name]), rib.ECMPAware))
	}

	// Healthy fabric vs the idealized verifier, restricted to ToR server
	// prefixes (config-derived state on both sides).
	em, fibs := runs[2].em, runs[2].fibs
	ideal := batfish.Simulate(em.Network(), em.Configs())
	var torPrefixes []netpkt.Prefix
	for _, d := range em.Network().DevicesByLayer(topo.LayerToR) {
		torPrefixes = append(torPrefixes, d.Originated...)
	}
	agree := 0
	for name, snap := range fibs {
		emuIdx := indexByPrefix(snap)
		verIdx := indexByPrefix(ideal[name])
		cfg := em.Configs()[name]
		for _, p := range torPrefixes {
			if originates(cfg, p) {
				continue // own attached subnet; the verifier has no FIB row
			}
			e, okE := emuIdx[p]
			v, okV := verIdx[p]
			if !okE && !okV {
				continue
			}
			res.ComparedEntries++
			if okE && okV && hopsOverlap(e, v) {
				agree++
			}
		}
	}
	if res.ComparedEntries > 0 {
		res.VerifierAgreement = float64(agree) / float64(res.ComparedEntries)
	}
	return res
}

func bgpOnly(s rib.Snapshot) rib.Snapshot {
	var out rib.Snapshot
	for _, e := range s {
		if e.Proto == rib.ProtoBGP {
			out = append(out, e)
		}
	}
	return out
}

func indexByPrefix(s rib.Snapshot) map[netpkt.Prefix]*rib.Entry {
	out := map[netpkt.Prefix]*rib.Entry{}
	for _, e := range s {
		out[e.Prefix] = e
	}
	return out
}

func hopsOverlap(a, b *rib.Entry) bool {
	for _, x := range a.NextHops {
		for _, y := range b.NextHops {
			if x.IP == y.IP {
				return true
			}
		}
	}
	// Both locally attached counts as agreement.
	return len(a.NextHops) > 0 && len(b.NextHops) > 0 &&
		a.NextHops[0].IP == 0 && b.NextHops[0].IP == 0
}

// FormatCrossValidate renders the §9 comparison.
func FormatCrossValidate(r CrossValidateResult) string {
	rows := [][]string{
		{"strict comparator, 2 runs w/ arrival-order ties", fmt.Sprintf("%d diffs", r.StrictDiffs)},
		{"ECMP-aware comparator, same runs", fmt.Sprintf("%d diffs", r.ECMPAwareDiffs)},
		{"emulation vs idealized verifier (healthy fabric)", fmt.Sprintf("%.0f%% agree (%d entries)", r.VerifierAgreement*100, r.ComparedEntries)},
	}
	return table([]string{"Comparison", "Result"}, rows)
}

func originates(c *config.DeviceConfig, p netpkt.Prefix) bool {
	if c == nil {
		return false
	}
	for _, q := range c.Networks {
		if q == p {
			return true
		}
	}
	return false
}
