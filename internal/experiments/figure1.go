package experiments

import (
	"fmt"
	"time"

	"crystalnet/internal/bgp"
	"crystalnet/internal/config"
	"crystalnet/internal/core"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/telemetry"
	"crystalnet/internal/topo"
)

// Figure1Result quantifies the traffic imbalance of the paper's Figure 1:
// vendor-divergent IP aggregation pins R8's traffic for the aggregate onto
// R7, while a config-level model predicts an even ECMP split.
type Figure1Result struct {
	// Emulated share of probe flows traversing each aggregator.
	R6Share, R7Share float64
	// PredictedShare is what the idealized (vendor-uniform) model expects
	// for each aggregator.
	PredictedShare float64
	// R8BestPath is the AS path R8 selected for the aggregate.
	R8BestPath string
	Flows      int
}

// Figure1 builds the Figure 1 topology — R6 runs the inherit-a-path vendor,
// R7 the bare-path vendor, both aggregating P1/P2 into P3 — then injects
// flows from R8 toward P3 and measures which aggregator carries them.
func Figure1(flows int) Figure1Result {
	if flows <= 0 {
		flows = 200
	}
	n := topo.NewNetwork("figure1")
	r1 := n.AddDevice("r1", topo.LayerToR, 1, "stub")
	r1.Originated = append(r1.Originated,
		netpkt.MustParsePrefix("100.64.0.0/24"), netpkt.MustParsePrefix("100.64.1.0/24"))
	for i, as := range []uint32{2, 3, 4, 5} {
		n.AddDevice(fmt.Sprintf("r%d", i+2), topo.LayerLeaf, as, "stub")
	}
	n.AddDevice("r6", topo.LayerSpine, 6, "vendorA")
	n.AddDevice("r7", topo.LayerSpine, 7, "vendorC")
	n.AddDevice("r8", topo.LayerBorder, 8, "stub")
	connect := func(a, b string) { n.Connect(n.MustDevice(a), n.MustDevice(b)) }
	connect("r1", "r2")
	connect("r1", "r3")
	connect("r1", "r4")
	connect("r1", "r5")
	connect("r2", "r6")
	connect("r3", "r6")
	connect("r4", "r7")
	connect("r5", "r7")
	connect("r6", "r8")
	connect("r7", "r8")

	// Vendor-A (R6) selects a contributor path; Vendor-C (R7) announces a
	// bare path — the §2 corner case.
	images := map[string]firmware.VendorImage{
		"stub":    fastImage("stub", firmware.Bugs{}),
		"vendorA": fastImage("vendorA", firmware.Bugs{}),
		"vendorC": fastImage("vendorC", firmware.Bugs{}),
	}
	vc := images["vendorC"]
	vc.AggregationMode = bgp.AggBarePath
	images["vendorC"] = vc

	o := core.New(core.Options{Seed: 11})
	prep, err := o.Prepare(core.PrepareInput{Network: n, Images: images})
	if err != nil {
		panic(err)
	}
	agg := config.Aggregate{Prefix: netpkt.MustParsePrefix("100.64.0.0/23"), SummaryOnly: true}
	prep.Configs["r6"].Aggregates = append(prep.Configs["r6"].Aggregates, agg)
	prep.Configs["r7"].Aggregates = append(prep.Configs["r7"].Aggregates, agg)

	em, err := o.Mockup(prep, false)
	if err != nil {
		panic(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		panic(err)
	}

	res := Figure1Result{PredictedShare: 0.5, Flows: flows}
	if attrs, ok := em.Devices["r8"].BGP().BestRoute(agg.Prefix); ok {
		res.R8BestPath = attrs.Path.String()
	}
	// Inject distinct flows from R8 toward addresses inside P3.
	src := em.Devices["r8"].Config().Loopback.Addr
	for i := 0; i < flows; i++ {
		em.InjectPackets("r8", dataplane.PacketMeta{
			Src: src, Dst: netpkt.MustParseIP("100.64.0.0") + netpkt.IP(i%512),
			Proto: netpkt.ProtoUDP, SrcPort: uint16(1024 + i), DstPort: 80, TTL: 32,
		}, 1, time.Millisecond)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		panic(err)
	}
	share := telemetry.LoadShare(em.PullPackets(), []string{"r6", "r7"})
	res.R6Share, res.R7Share = share["r6"], share["r7"]
	return res
}

// FormatFigure1 renders the measurement against the ideal-model prediction.
func FormatFigure1(r Figure1Result) string {
	rows := [][]string{
		{"R6 (Vendor-A, inherit path)", fmt.Sprintf("%.0f%%", r.R6Share*100), fmt.Sprintf("%.0f%%", r.PredictedShare*100)},
		{"R7 (Vendor-C, bare path)", fmt.Sprintf("%.0f%%", r.R7Share*100), fmt.Sprintf("%.0f%%", r.PredictedShare*100)},
	}
	return fmt.Sprintf("R8 best path for P3: {%s} over %d flows\n%s",
		r.R8BestPath, r.Flows, table([]string{"Aggregator", "Emulated share", "Ideal-model share"}, rows))
}
