// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §5, §8): the incident-coverage matrix (Table 1), the
// vendor-aggregation imbalance (Figure 1), boundary safety (Figure 7),
// network scales (Table 3), mockup/clear latencies (Figure 8), CPU
// utilization (Figure 9), the reload/recovery measurements (§8.3) and the
// safe-boundary cost reductions (Table 4).
//
// Each experiment returns structured results; Format* helpers render them
// as the paper formats them. bench_test.go and cmd/crystalbench are thin
// drivers over this package.
//
// DESIGN.md §3 is the per-experiment index mapping each function here to its
// table or figure.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// check renders a coverage cell.
func check(b bool) string {
	if b {
		return "yes"
	}
	return "no "
}

// percentile returns the nearest-rank percentile of a duration sample.
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (len(s)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return s[idx]
}

// Percentiles bundles the p10/p50/p90 triple Figure 8 plots.
type Percentiles struct {
	P10, P50, P90 time.Duration
}

func percentiles(ds []time.Duration) Percentiles {
	return Percentiles{percentile(ds, 10), percentile(ds, 50), percentile(ds, 90)}
}

// String renders "p50 (p10-p90)" rounded to seconds.
func (p Percentiles) String() string {
	r := func(d time.Duration) string { return d.Round(time.Second).String() }
	return fmt.Sprintf("%s (%s-%s)", r(p.P50), r(p.P10), r(p.P90))
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
