package experiments

import (
	"fmt"
	"strings"

	"crystalnet/internal/boundary"
	"crystalnet/internal/topo"
)

// Figure7Row reports the safety analysis of one boundary choice from the
// paper's Figure 7.
type Figure7Row struct {
	Case           string
	Emulated       []string
	Boundary       []string
	Speakers       []string
	Prop52OK       bool
	Prop53OK       bool
	LemmaSafe      bool
	Counterexample []string
}

// Figure7 rebuilds the paper's Figure 7 topology and evaluates all three
// boundary choices: (a) unsafe, (b) safe including the spines, (c) safe
// leaf layer without ToRs.
func Figure7() []Figure7Row {
	n := figure7Topology()
	cases := []struct {
		name     string
		emulated []string
	}{
		{"7a: T1-4,L1-4 (unsafe)", []string{"T1", "T2", "T3", "T4", "L1", "L2", "L3", "L4"}},
		{"7b: +S1,S2 (safe)", []string{"T1", "T2", "T3", "T4", "L1", "L2", "L3", "L4", "S1", "S2"}},
		{"7c: L1-4,S1-2 (safe)", []string{"L1", "L2", "L3", "L4", "S1", "S2"}},
	}
	var out []Figure7Row
	for _, c := range cases {
		emu := map[string]bool{}
		for _, name := range c.emulated {
			emu[name] = true
		}
		plan, err := boundary.BuildPlan(n, emu)
		if err != nil {
			panic(err)
		}
		res := plan.SimulatePropagation()
		out = append(out, Figure7Row{
			Case:     c.name,
			Emulated: c.emulated,
			Boundary: plan.Boundary, Speakers: plan.Speakers,
			Prop52OK:       plan.CheckProposition52() == nil,
			Prop53OK:       plan.CheckProposition53() == nil,
			LemmaSafe:      res.Safe,
			Counterexample: res.Counterexample,
		})
	}
	return out
}

// figure7Topology is the paper's Figure 7 network (see the boundary
// package's tests for the AS plan rationale).
func figure7Topology() *topo.Network {
	n := topo.NewNetwork("figure7")
	s1 := n.AddDevice("S1", topo.LayerSpine, 100, "ctnra")
	s2 := n.AddDevice("S2", topo.LayerSpine, 100, "ctnra")
	leafAS := []uint32{200, 200, 300, 300, 400, 400}
	var leaves []*topo.Device
	for i := 0; i < 6; i++ {
		l := n.AddDevice(fmt.Sprintf("L%d", i+1), topo.LayerLeaf, leafAS[i], "ctnra")
		leaves = append(leaves, l)
		n.Connect(l, s1)
		n.Connect(l, s2)
	}
	for i := 0; i < 6; i++ {
		t := n.AddDevice(fmt.Sprintf("T%d", i+1), topo.LayerToR, uint32(i+1), "ctnrb")
		pair := (i / 2) * 2
		n.Connect(t, leaves[pair])
		n.Connect(t, leaves[pair+1])
	}
	return n
}

// FormatFigure7 renders the safety table.
func FormatFigure7(rows []Figure7Row) string {
	var cells [][]string
	for _, r := range rows {
		ce := "-"
		if len(r.Counterexample) > 0 {
			ce = strings.Join(r.Counterexample, ">")
		}
		cells = append(cells, []string{
			r.Case,
			fmt.Sprintf("%d", len(r.Boundary)),
			fmt.Sprintf("%d", len(r.Speakers)),
			check(r.Prop52OK), check(r.Prop53OK), check(r.LemmaSafe), ce,
		})
	}
	return table([]string{"Case", "#Boundary", "#Speakers", "Prop5.2", "Prop5.3", "Lemma5.1", "Counterexample"}, cells)
}
