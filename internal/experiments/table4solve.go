package experiments

import (
	"fmt"

	"crystalnet/internal/boundary"
	"crystalnet/internal/cloud"
	"crystalnet/internal/parallel"
	"crystalnet/internal/topo"
)

// Table4SolveRow compares the boundary solver's best plan against the
// hand-picked Algorithm-1 closure for one Table 4 validation case.
type Table4SolveRow struct {
	Case     string
	Strategy string
	Cert     boundary.Certificate
	// Solver best.
	Borders, Spines, Leaves, ToRs int
	Devices, Speakers             int
	Proportion                    float64
	VMs                           int
	CostPerHourUSD                float64
	// Hand-picked Algorithm-1 baseline for the same targets.
	HandVMs     int
	HandDevices int
	HandCost    float64
	// Reductions vs. full emulation and vs. the hand-picked plan.
	FullVMs       int
	FullCost      float64
	CostReduction float64
	VsHand        float64
}

// Table4Solve generalizes Table 4: instead of evaluating only the two
// hand-picked subsets, it runs boundary.Solve on the same target sets
// (one pod, the whole spine layer) over the full L-DC topology and
// reports the solver's winner next to the Algorithm-1 closure the paper's
// table used. An optional workers argument bounds the pool (default
// GOMAXPROCS); each job regenerates the deterministic L-DC topology so
// jobs share no state, and solver output is deterministic for any worker
// count.
func Table4Solve(workers ...int) []Table4SolveRow {
	w := 0
	if len(workers) > 0 {
		w = workers[0]
	}
	cases := []struct {
		name    string
		targets func(n *topo.Network) []string
	}{
		{"One Pod", func(n *topo.Network) []string {
			var out []string
			for _, d := range n.DevicesInPod(0) {
				out = append(out, d.Name)
			}
			return out
		}},
		{"All Spines", func(n *topo.Network) []string {
			var out []string
			for _, d := range n.DevicesByLayer(topo.LayerSpine) {
				out = append(out, d.Name)
			}
			return out
		}},
	}
	return parallel.Map(len(cases), w, func(i int) Table4SolveRow {
		n := topo.GenerateClos(topo.LDC())
		targets := cases[i].targets(n)
		res, err := boundary.Solve(n, targets, boundary.SolveOptions{})
		if err != nil {
			panic(fmt.Sprintf("table4solve %s: %v", cases[i].name, err))
		}
		hand := handPickedScale(n, targets)
		s := res.Best.Scale
		return Table4SolveRow{
			Case:     cases[i].name,
			Strategy: res.Best.Strategy,
			Cert:     res.Best.Certificate,
			Borders:  s.LayerCounts[topo.LayerBorder], Spines: s.LayerCounts[topo.LayerSpine],
			Leaves: s.LayerCounts[topo.LayerLeaf], ToRs: s.LayerCounts[topo.LayerToR],
			Devices: s.TotalEmulated, Speakers: s.Speakers,
			Proportion: s.Proportion,
			VMs:        s.VMs, CostPerHourUSD: res.Best.HourlyUSD,
			HandVMs: hand.VMs, HandDevices: hand.TotalEmulated,
			HandCost: float64(hand.VMs) * cloud.SKUStandard.PricePerHour,
			FullVMs:  res.FullVMs, FullCost: res.FullHourlyUSD,
			CostReduction: res.CostReduction,
			VsHand:        1 - float64(s.VMs)/float64(hand.VMs),
		}
	})
}

// handPickedScale reproduces the Table 4 hand-picked flow for a target
// set: Algorithm 1 closure, checked safe, scaled.
func handPickedScale(n *topo.Network, must []string) boundary.Scale {
	emu, err := boundary.FindSafeDCBoundary(n, must)
	if err != nil {
		panic(err)
	}
	p, err := boundary.BuildPlan(n, emu)
	if err != nil {
		panic(err)
	}
	if err := p.CheckSafe(); err != nil {
		panic(fmt.Sprintf("table4solve: hand-picked boundary unsafe: %v", err))
	}
	return p.Scale()
}

// FormatTable4Solve renders the solver-vs-hand-picked comparison.
func FormatTable4Solve(rows []Table4SolveRow) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Case, r.Strategy, string(r.Cert),
			fmt.Sprintf("%d", r.Borders), fmt.Sprintf("%d", r.Spines),
			fmt.Sprintf("%d", r.Leaves), fmt.Sprintf("%d", r.ToRs),
			fmt.Sprintf("%d", r.Speakers),
			fmt.Sprintf("%.1f%%", r.Proportion*100),
			fmt.Sprintf("%d", r.VMs),
			fmt.Sprintf("$%.2f/h", r.CostPerHourUSD),
			fmt.Sprintf("%d VMs $%.2f/h", r.HandVMs, r.HandCost),
			fmt.Sprintf("%.1f%%", r.CostReduction*100),
			fmt.Sprintf("%.1f%%", r.VsHand*100),
		})
	}
	return table([]string{"Case", "Strategy", "Cert", "#Borders", "#Spines", "#Leaves", "#ToRs", "#Speakers", "Prop.", "VMs", "Cost", "Hand-picked", "vs Full", "vs Hand"}, cells)
}
