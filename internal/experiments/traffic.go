package experiments

import (
	"fmt"
	"strings"
	"time"

	"crystalnet/internal/core"
	"crystalnet/internal/topo"
	"crystalnet/internal/traffic"
)

// This file is the traffic-plane benchmark (docs/TRAFFIC.md): converge one
// fabric, attach a production-sized flow matrix, and measure how fast the
// flow-level walker re-settles it against the live FIBs. The headline
// number is flows-settled/s — the rate at which user load can be
// re-evaluated at every convergence point of a chaos campaign.

// TrafficConfig selects the fabric and load for the traffic benchmark.
type TrafficConfig struct {
	// Spec is the fabric to converge (topo.SDC/MDC/LDCScaled).
	Spec topo.ClosSpec
	// Flows is the modeled flow count (default 1 million).
	Flows uint64
	// Settles is how many timed re-settles to run after the attach
	// (default 5).
	Settles int
	// Seed seeds the emulation and the matrix (0 means 1).
	Seed int64
	// Shards, when positive, runs convergence sharded with this many
	// workers (core.Options.Shards).
	Shards int
}

// TrafficResult is one measured traffic attach+settle at scale.
type TrafficResult struct {
	Fabric     string `json:"fabric"`
	Devices    int    `json:"devices"`
	Flows      uint64 `json:"flows"`
	Aggregates int    `json:"aggregates"`

	// ConvergeWall is host time for mockup+convergence (context for the
	// settle numbers, comparable with the §10 scale benchmark).
	ConvergeWall time.Duration `json:"converge_wall_ns"`
	// AttachWall covers matrix construction plus the first settle.
	AttachWall time.Duration `json:"attach_wall_ns"`
	// SettleWall is total host time for the timed re-settles; Settles is
	// how many ran. FlowsPerSec is Flows*Settles/SettleWall — the headline
	// flows-settled/s rate.
	SettleWall  time.Duration `json:"settle_wall_ns"`
	Settles     int           `json:"settles"`
	FlowsPerSec float64       `json:"flows_per_sec"`

	// Final-settle accounting, summed over classes: a healthy fabric
	// delivers everything.
	Delivered  uint64 `json:"delivered"`
	Blackholed uint64 `json:"blackholed"`
	Lost       uint64 `json:"lost"`
}

// Traffic converges cfg.Spec, attaches a cfg.Flows-flow matrix and times
// re-settles against the converged FIBs.
func Traffic(cfg TrafficConfig) TrafficResult {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Flows == 0 {
		cfg.Flows = 1_000_000
	}
	if cfg.Settles == 0 {
		cfg.Settles = 5
	}

	start := time.Now()
	n := topo.GenerateClos(cfg.Spec)
	topo.AttachWAN(n, cfg.Spec, 2)
	o := core.New(core.Options{Seed: cfg.Seed, Shards: cfg.Shards})
	prep, err := o.Prepare(core.PrepareInput{Network: n})
	if err != nil {
		panic(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		panic(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		panic(err)
	}
	converge := time.Since(start)

	start = time.Now()
	if err := em.AttachTraffic(traffic.Spec{Flows: cfg.Flows, Seed: cfg.Seed}); err != nil {
		panic(err)
	}
	attach := time.Since(start)

	start = time.Now()
	for i := 0; i < cfg.Settles; i++ {
		em.SettleTraffic()
	}
	settle := time.Since(start)

	rep := em.Traffic().Report()
	res := TrafficResult{
		Fabric:     cfg.Spec.Name,
		Devices:    len(em.Devices),
		Flows:      rep.Flows,
		Aggregates: rep.Aggregates,

		ConvergeWall: converge,
		AttachWall:   attach,
		SettleWall:   settle,
		Settles:      cfg.Settles,
		FlowsPerSec:  float64(rep.Flows) * float64(cfg.Settles) / settle.Seconds(),
	}
	for _, c := range rep.Classes {
		res.Delivered += c.Delivered
		res.Blackholed += c.Blackholed
		res.Lost += c.Lost
	}
	em.Teardown()
	o.Destroy(prep)
	return res
}

// FormatTraffic renders the traffic benchmark result.
func FormatTraffic(r TrafficResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %8s %10s %11s %11s %11s %11s %15s\n",
		"fabric", "devices", "flows", "aggregates", "converge", "attach", "settle", "flows/s")
	fmt.Fprintf(&b, "%-9s %8d %10d %11d %11s %11s %11s %15.0f\n",
		r.Fabric, r.Devices, r.Flows, r.Aggregates,
		r.ConvergeWall.Round(time.Millisecond),
		r.AttachWall.Round(time.Millisecond),
		(r.SettleWall / time.Duration(r.Settles)).Round(time.Millisecond),
		r.FlowsPerSec)
	fmt.Fprintf(&b, "\nfinal settle: %d delivered, %d blackholed, %d lost (settle column is per-settle over %d runs)\n",
		r.Delivered, r.Blackholed, r.Lost, r.Settles)
	return b.String()
}
