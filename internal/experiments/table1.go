package experiments

import (
	"fmt"
	"time"

	"crystalnet/internal/batfish"
	"crystalnet/internal/bgp"
	"crystalnet/internal/config"
	"crystalnet/internal/core"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/topo"
)

// Table1Row is one root-cause class of the incident study with the coverage
// verdicts of emulation vs configuration verification.
type Table1Row struct {
	RootCause    string
	Proportion   string // from the paper's two-year incident study
	Example      string
	CrystalNet   bool
	Verification bool
	Evidence     string
}

// Table1 reruns one representative incident per root-cause class under (a)
// the CrystalNet emulation and (b) the Batfish-style idealized verifier,
// and reports who detects what — the reproduction of the paper's Table 1
// coverage columns.
func Table1() []Table1Row {
	return []Table1Row{
		softwareBugScenario(),
		configBugScenario(),
		humanErrorScenario(),
		hardwareFailureScenario(),
		unidentifiedScenario(),
	}
}

// fastImage is a quick-booting test image for scenario runs.
func fastImage(name string, bugs firmware.Bugs) firmware.VendorImage {
	return firmware.VendorImage{
		Name: name, Version: "scenario", Kind: firmware.ContainerImage,
		BootFixed: 5 * time.Second, BootJitter: 5 * time.Second, BootWork: 1,
		MsgWork: 0.0001, RouteWork: 0.0002, Bugs: bugs,
	}
}

// scenarioNet is a leaf-spine pair: origin (vendor "dut") announces two /24s
// through mid (vendor "mid") to sink (vendor "sink").
func scenarioNet() *topo.Network {
	n := topo.NewNetwork("scenario")
	origin := n.AddDevice("origin", topo.LayerToR, 65001, "dut")
	mid := n.AddDevice("mid", topo.LayerLeaf, 65002, "mid")
	sink := n.AddDevice("sink", topo.LayerSpine, 65003, "sink")
	origin.Originated = append(origin.Originated,
		netpkt.MustParsePrefix("100.64.2.0/24"),
		netpkt.MustParsePrefix("100.64.3.0/24"))
	n.Connect(origin, mid)
	n.Connect(mid, sink)
	return n
}

func runScenario(n *topo.Network, images map[string]firmware.VendorImage) *core.Emulation {
	o := core.New(core.Options{Seed: 7})
	prep, err := o.Prepare(core.PrepareInput{Network: n, Images: images})
	if err != nil {
		panic(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		panic(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		panic(err)
	}
	return em
}

// softwareBugScenario: a new firmware release "erroneously stopped
// announcing certain IP prefixes" (§2). The idealized verifier computes
// FIBs from the config — which still says both prefixes are announced.
func softwareBugScenario() Table1Row {
	n := scenarioNet()
	images := map[string]firmware.VendorImage{
		"dut":  fastImage("dut", firmware.Bugs{StopAnnouncingOddPrefixes: true}),
		"mid":  fastImage("mid", firmware.Bugs{}),
		"sink": fastImage("sink", firmware.Bugs{}),
	}
	em := runScenario(n, images)
	odd := netpkt.MustParseIP("100.64.3.1")
	_, inEmulation := em.Devices["sink"].FIB().Lookup(odd)

	fibs := batfish.Simulate(n, configsOf(em))
	inVerifier := false
	for _, e := range fibs["sink"] {
		if e.Prefix.Contains(odd) && e.Prefix.Len == 24 {
			inVerifier = true
		}
	}
	return Table1Row{
		RootCause:  "Software bugs",
		Proportion: "36%",
		Example:    "firmware stops announcing certain prefixes",
		// The emulation exposes the divergence (prefix missing); the
		// verifier's ideal model still shows it present.
		CrystalNet:   !inEmulation,
		Verification: !inVerifier,
		Evidence: fmt.Sprintf("emulated sink FIB has 100.64.3.0/24: %v; verifier predicts: %v",
			inEmulation, inVerifier),
	}
}

// configsOf extracts the emulation's configs for the verifier run — the
// paper's point being that both tools ingest the same artifacts.
func configsOf(em *core.Emulation) map[string]*config.DeviceConfig {
	return em.Configs()
}

// configBugScenario: an ad-hoc route-map change uses the wrong prefix, so a
// prefix that must stay inside the fabric leaks to the border. The mistake
// is in the configuration itself, so both the emulation and the verifier
// expose it.
func configBugScenario() Table1Row {
	n := scenarioNet()
	images := map[string]firmware.VendorImage{
		"dut": fastImage("dut", firmware.Bugs{}), "mid": fastImage("mid", firmware.Bugs{}),
		"sink": fastImage("sink", firmware.Bugs{}),
	}
	// Intent: 100.64.3.0/24 must NOT reach sink. The operator's route-map
	// denies 100.64.30.0/24 instead (fat-fingered prefix).
	o := core.New(core.Options{Seed: 7})
	prep, err := o.Prepare(core.PrepareInput{Network: n, Images: images})
	if err != nil {
		panic(err)
	}
	typo := netpkt.MustParsePrefix("100.64.30.0/24")
	cfg := prep.Configs["mid"]
	cfg.RouteMaps["GUARD"] = &bgp.Policy{
		Name:          "GUARD",
		Rules:         []bgp.Rule{{Name: "10", Action: bgp.Deny, Match: bgp.Match{Prefix: &typo}}},
		DefaultAction: bgp.Permit,
	}
	for i := range cfg.Neighbors {
		if cfg.Neighbors[i].RemoteAS == 65003 {
			cfg.Neighbors[i].ExportPolicy = "GUARD"
		}
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		panic(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		panic(err)
	}
	leakDst := netpkt.MustParseIP("100.64.3.1")
	_, leakedEmu := em.Devices["sink"].FIB().Lookup(leakDst)

	// Feed the same configs to the verifier.
	fibs := batfish.Simulate(n, configsOf(em))
	leakedVerif := false
	for _, e := range fibs["sink"] {
		if e.Prefix.Contains(leakDst) && e.Prefix.Len == 24 {
			leakedVerif = true
		}
	}
	return Table1Row{
		RootCause:    "Config. bugs",
		Proportion:   "27%",
		Example:      "route-map typo leaks a prefix past the border",
		CrystalNet:   leakedEmu,
		Verification: leakedVerif,
		Evidence: fmt.Sprintf("leak visible in emulation: %v; in verifier: %v",
			leakedEmu, leakedVerif),
	}
}

// humanErrorScenario: the operator intends to shut one BGP session but
// types the device-wide shutdown (§2's tool bug, and the class verification
// can never see because no config file changes).
func humanErrorScenario() Table1Row {
	n := scenarioNet()
	images := map[string]firmware.VendorImage{
		"dut": fastImage("dut", firmware.Bugs{}), "mid": fastImage("mid", firmware.Bugs{}),
		"sink": fastImage("sink", firmware.Bugs{}),
	}
	em := runScenario(n, images)
	s, err := em.Login("mid")
	if err != nil {
		panic(err)
	}
	// The practice session on the emulator: the operator runs the wrong
	// command...
	s.Exec("shutdown") // intended: "neighbor <ip> shutdown"
	em.RunUntilConverged(0)
	// ...and the emulator immediately shows the blast radius.
	deviceDead := em.Devices["mid"].State() != firmware.DeviceRunning
	_, sinkStillRouted := em.Devices["sink"].FIB().Lookup(netpkt.MustParseIP("100.64.2.1"))

	// The verifier only ever sees config files, which never changed.
	return Table1Row{
		RootCause:    "Human errors",
		Proportion:   "6%",
		Example:      "device-wide shutdown instead of one BGP session",
		CrystalNet:   deviceDead && !sinkStillRouted,
		Verification: false,
		Evidence: fmt.Sprintf("emulated device halted: %v, downstream routes lost: %v; config files unchanged, verifier blind",
			deviceDead, !sinkStillRouted),
	}
}

// hardwareFailureScenario: ASIC driver faults and silent packet drops are
// out of scope for both tools (§9 limitations) — CrystalNet can rehearse a
// fiber cut's control-plane impact, but cannot reproduce the hardware
// defect itself.
func hardwareFailureScenario() Table1Row {
	return Table1Row{
		RootCause:    "Hardware failures",
		Proportion:   "29%",
		Example:      "ASIC driver failure, silent packet drops, fiber cuts",
		CrystalNet:   false,
		Verification: false,
		Evidence:     "§9: emulation runs firmware in sandboxes, not ASICs; mitigation drills (link cuts) are possible but the defect class is not reproducible",
	}
}

func unidentifiedScenario() Table1Row {
	return Table1Row{
		RootCause:    "Unidentified",
		Proportion:   "2%",
		Example:      "transient failures",
		CrystalNet:   false,
		Verification: false,
		Evidence:     "transients with no identified root cause reproduce in neither tool",
	}
}

// FormatTable1 renders the coverage matrix.
func FormatTable1(rows []Table1Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.RootCause, r.Proportion, r.Example, check(r.CrystalNet), check(r.Verification)})
	}
	return table([]string{"Root Cause", "Prop.", "Example", "CrystalNet", "Verification"}, cells)
}
