package experiments

import (
	"reflect"
	"testing"
)

// TestFigure8ParallelDeterminism checks the tentpole's contract: the worker
// pool only redistributes independent engines, so the sweep's results are
// value-identical at any pool size for the same seeds.
func TestFigure8ParallelDeterminism(t *testing.T) {
	base := Figure8Config{Reps: 2, SkipMDC: true, SkipLDC: true}

	serialCfg := base
	serialCfg.Workers = 1
	serial := Figure8(serialCfg)

	poolCfg := base
	poolCfg.Workers = 4
	pooled := Figure8(poolCfg)

	if !reflect.DeepEqual(serial, pooled) {
		t.Fatalf("parallel harness diverged from serial run:\nworkers=1: %+v\nworkers=4: %+v", serial, pooled)
	}
}

// TestFigure8RepeatDeterminism re-runs the identical sweep twice in one
// process: results must match run for run. This guards against behaviour
// leaking through process-global state (the historical offender was Clear
// drawing per-VM jitter in map-iteration order).
func TestFigure8RepeatDeterminism(t *testing.T) {
	cfg := Figure8Config{Reps: 2, SkipMDC: true, SkipLDC: true, Workers: 1}
	first := Figure8(cfg)
	second := Figure8(cfg)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("two identical serial runs diverged:\n1st: %+v\n2nd: %+v", first, second)
	}
}

// TestTable4ParallelDeterminism covers the same contract for the boundary
// computations, which regenerate the topology per job.
func TestTable4ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("L-DC boundary computation is slow")
	}
	serial := Table4(1)
	pooled := Table4(4)
	if !reflect.DeepEqual(serial, pooled) {
		t.Fatalf("Table4 diverged:\nworkers=1: %+v\nworkers=4: %+v", serial, pooled)
	}
}
