package experiments

import (
	"fmt"

	"crystalnet/internal/topo"
)

// Table3Row describes one evaluation fabric.
type Table3Row struct {
	Network                       string
	Borders, Spines, Leaves, ToRs int
	// Routes is the total number of routing-table entries across all
	// switches once converged (the paper's last column), estimated
	// analytically from the fabric shape.
	Routes int
}

// Table3 generates the three evaluation fabrics and reports their shapes —
// the reproduction of the paper's Table 3 (S-DC/M-DC/L-DC).
func Table3() []Table3Row {
	var out []Table3Row
	for _, spec := range []topo.ClosSpec{topo.SDC(), topo.MDC(), topo.LDC()} {
		n := topo.GenerateClos(spec)
		c := n.LayerCounts()
		out = append(out, Table3Row{
			Network: spec.Name,
			Borders: c[topo.LayerBorder], Spines: c[topo.LayerSpine],
			Leaves: c[topo.LayerLeaf], ToRs: c[topo.LayerToR],
			Routes: spec.EstimatedRoutes(),
		})
	}
	return out
}

// FormatTable3 renders the fabric inventory.
func FormatTable3(rows []Table3Row) string {
	var cells [][]string
	for _, r := range rows {
		routes := fmt.Sprintf("%.1fM", float64(r.Routes)/1e6)
		if r.Routes < 1_000_000 {
			routes = fmt.Sprintf("%.0fK", float64(r.Routes)/1e3)
		}
		cells = append(cells, []string{
			r.Network,
			fmt.Sprintf("%d", r.Borders), fmt.Sprintf("%d", r.Spines),
			fmt.Sprintf("%d", r.Leaves), fmt.Sprintf("%d", r.ToRs),
			routes,
		})
	}
	return table([]string{"Network", "#Borders", "#Spines", "#Leaves", "#ToRs", "#Routes"}, cells)
}
