package experiments

import (
	"fmt"

	"crystalnet/internal/boundary"
	"crystalnet/internal/cloud"
	"crystalnet/internal/parallel"
	"crystalnet/internal/topo"
)

// Table4Row reports the emulation scale of one safe-boundary validation
// case in L-DC.
type Table4Row struct {
	Case                          string
	Borders, Spines, Leaves, ToRs int
	Speakers                      int
	Proportion                    float64
	VMs                           int
	CostPerHourUSD                float64
	// FullVMs / FullCost are the whole-fabric emulation footprint, for the
	// §8.4 cost-reduction claim.
	FullVMs       int
	FullCost      float64
	CostReduction float64
}

// Table4 runs Algorithm 1 for the paper's two common validation cases on
// the full L-DC topology — changing one pod, and changing the whole spine
// layer — and reports the resulting emulation scales and cost reductions
// (the paper's Table 4 plus the 94-96% claim of §1). An optional workers
// argument bounds the pool fanning the three boundary computations across
// cores (default GOMAXPROCS); each job regenerates the deterministic L-DC
// topology so jobs share no state.
func Table4(workers ...int) []Table4Row {
	w := 0
	if len(workers) > 0 {
		w = workers[0]
	}
	type result struct {
		row  Table4Row
		full fullFootprint
	}
	results := parallel.Map(3, w, func(i int) result {
		n := topo.GenerateClos(topo.LDC())
		switch i {
		case 0:
			return result{full: fullScale(n)}
		case 1:
			var pod []string
			for _, d := range n.DevicesInPod(0) {
				pod = append(pod, d.Name)
			}
			return result{row: boundaryCase(n, "One Pod", pod)}
		default:
			var spines []string
			for _, d := range n.DevicesByLayer(topo.LayerSpine) {
				spines = append(spines, d.Name)
			}
			return result{row: boundaryCase(n, "All Spines", spines)}
		}
	})
	full := results[0].full
	rows := []Table4Row{results[1].row, results[2].row}
	for i := range rows {
		rows[i].FullVMs, rows[i].FullCost = full.vms, full.cost
		rows[i].CostReduction = 1 - rows[i].CostPerHourUSD/full.cost
	}
	return rows
}

type fullFootprint struct {
	vms  int
	cost float64
}

func fullScale(n *topo.Network) fullFootprint {
	emu := map[string]bool{}
	for _, d := range n.Devices() {
		if d.Layer != topo.LayerExternal {
			emu[d.Name] = true
		}
	}
	p, err := boundary.BuildPlan(n, emu)
	if err != nil {
		panic(err)
	}
	s := p.Scale()
	return fullFootprint{vms: s.VMs, cost: float64(s.VMs) * cloud.SKUStandard.PricePerHour}
}

func boundaryCase(n *topo.Network, name string, must []string) Table4Row {
	emu, err := boundary.FindSafeDCBoundary(n, must)
	if err != nil {
		panic(err)
	}
	p, err := boundary.BuildPlan(n, emu)
	if err != nil {
		panic(err)
	}
	if err := p.CheckSafe(); err != nil {
		panic(fmt.Sprintf("table4 %s: unsafe boundary: %v", name, err))
	}
	s := p.Scale()
	cost := float64(s.VMs) * cloud.SKUStandard.PricePerHour
	return Table4Row{
		Case:    name,
		Borders: s.LayerCounts[topo.LayerBorder], Spines: s.LayerCounts[topo.LayerSpine],
		Leaves: s.LayerCounts[topo.LayerLeaf], ToRs: s.LayerCounts[topo.LayerToR],
		Speakers:   s.Speakers,
		Proportion: s.Proportion,
		VMs:        s.VMs, CostPerHourUSD: cost,
	}
}

// FormatTable4 renders the boundary-scale table.
func FormatTable4(rows []Table4Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Case,
			fmt.Sprintf("%d", r.Borders), fmt.Sprintf("%d", r.Spines),
			fmt.Sprintf("%d", r.Leaves), fmt.Sprintf("%d", r.ToRs),
			fmt.Sprintf("%d", r.Speakers),
			fmt.Sprintf("%.1f%%", r.Proportion*100),
			fmt.Sprintf("%d", r.VMs),
			fmt.Sprintf("$%.2f/h", r.CostPerHourUSD),
			fmt.Sprintf("%.1f%% (vs %d VMs $%.0f/h)", r.CostReduction*100, r.FullVMs, r.FullCost),
		})
	}
	return table([]string{"Case", "#Borders", "#Spines", "#Leaves", "#ToRs", "#Speakers", "Prop.", "VMs", "Cost", "Reduction"}, cells)
}
