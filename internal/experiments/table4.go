package experiments

import (
	"fmt"

	"crystalnet/internal/boundary"
	"crystalnet/internal/cloud"
	"crystalnet/internal/topo"
)

// Table4Row reports the emulation scale of one safe-boundary validation
// case in L-DC.
type Table4Row struct {
	Case                          string
	Borders, Spines, Leaves, ToRs int
	Speakers                      int
	Proportion                    float64
	VMs                           int
	CostPerHourUSD                float64
	// FullVMs / FullCost are the whole-fabric emulation footprint, for the
	// §8.4 cost-reduction claim.
	FullVMs       int
	FullCost      float64
	CostReduction float64
}

// Table4 runs Algorithm 1 for the paper's two common validation cases on
// the full L-DC topology — changing one pod, and changing the whole spine
// layer — and reports the resulting emulation scales and cost reductions
// (the paper's Table 4 plus the 94-96% claim of §1).
func Table4() []Table4Row {
	n := topo.GenerateClos(topo.LDC())
	full := fullScale(n)

	var out []Table4Row
	// Case 1: one pod.
	var pod []string
	for _, d := range n.DevicesInPod(0) {
		pod = append(pod, d.Name)
	}
	out = append(out, boundaryCase(n, "One Pod", pod, full))

	// Case 2: the whole spine layer.
	var spines []string
	for _, d := range n.DevicesByLayer(topo.LayerSpine) {
		spines = append(spines, d.Name)
	}
	out = append(out, boundaryCase(n, "All Spines", spines, full))
	return out
}

type fullFootprint struct {
	vms  int
	cost float64
}

func fullScale(n *topo.Network) fullFootprint {
	emu := map[string]bool{}
	for _, d := range n.Devices() {
		if d.Layer != topo.LayerExternal {
			emu[d.Name] = true
		}
	}
	p, err := boundary.BuildPlan(n, emu)
	if err != nil {
		panic(err)
	}
	s := p.Scale()
	return fullFootprint{vms: s.VMs, cost: float64(s.VMs) * cloud.SKUStandard.PricePerHour}
}

func boundaryCase(n *topo.Network, name string, must []string, full fullFootprint) Table4Row {
	emu, err := boundary.FindSafeDCBoundary(n, must)
	if err != nil {
		panic(err)
	}
	p, err := boundary.BuildPlan(n, emu)
	if err != nil {
		panic(err)
	}
	if err := p.CheckSafe(); err != nil {
		panic(fmt.Sprintf("table4 %s: unsafe boundary: %v", name, err))
	}
	s := p.Scale()
	cost := float64(s.VMs) * cloud.SKUStandard.PricePerHour
	return Table4Row{
		Case:    name,
		Borders: s.LayerCounts[topo.LayerBorder], Spines: s.LayerCounts[topo.LayerSpine],
		Leaves: s.LayerCounts[topo.LayerLeaf], ToRs: s.LayerCounts[topo.LayerToR],
		Speakers:   s.Speakers,
		Proportion: s.Proportion,
		VMs:        s.VMs, CostPerHourUSD: cost,
		FullVMs: full.vms, FullCost: full.cost,
		CostReduction: 1 - cost/full.cost,
	}
}

// FormatTable4 renders the boundary-scale table.
func FormatTable4(rows []Table4Row) string {
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Case,
			fmt.Sprintf("%d", r.Borders), fmt.Sprintf("%d", r.Spines),
			fmt.Sprintf("%d", r.Leaves), fmt.Sprintf("%d", r.ToRs),
			fmt.Sprintf("%d", r.Speakers),
			fmt.Sprintf("%.1f%%", r.Proportion*100),
			fmt.Sprintf("%d", r.VMs),
			fmt.Sprintf("$%.2f/h", r.CostPerHourUSD),
			fmt.Sprintf("%.1f%% (vs %d VMs $%.0f/h)", r.CostReduction*100, r.FullVMs, r.FullCost),
		})
	}
	return table([]string{"Case", "#Borders", "#Spines", "#Leaves", "#ToRs", "#Speakers", "Prop.", "VMs", "Cost", "Reduction"}, cells)
}
