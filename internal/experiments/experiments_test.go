package experiments

import (
	"strings"
	"testing"
	"time"

	"crystalnet/internal/firmware"
)

func TestTable1CoverageMatrix(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string][2]bool{ // root cause -> (crystalnet, verification)
		"Software bugs":     {true, false},
		"Config. bugs":      {true, true},
		"Human errors":      {true, false},
		"Hardware failures": {false, false},
		"Unidentified":      {false, false},
	}
	for _, r := range rows {
		w, ok := want[r.RootCause]
		if !ok {
			t.Fatalf("unexpected row %q", r.RootCause)
		}
		if r.CrystalNet != w[0] || r.Verification != w[1] {
			t.Fatalf("%s: coverage = %v/%v, want %v/%v (%s)",
				r.RootCause, r.CrystalNet, r.Verification, w[0], w[1], r.Evidence)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Software bugs") || !strings.Contains(out, "CrystalNet") {
		t.Fatalf("format broken:\n%s", out)
	}
}

func TestFigure1ImbalanceShape(t *testing.T) {
	r := Figure1(120)
	// The paper's incident: R8 pins essentially all P3 traffic to R7.
	if r.R7Share < 0.95 {
		t.Fatalf("R7 share = %.2f, want ~1.0 (imbalance)", r.R7Share)
	}
	if r.R6Share > 0.05 {
		t.Fatalf("R6 share = %.2f, want ~0", r.R6Share)
	}
	if r.R8BestPath != "7" {
		t.Fatalf("R8 best path = %q, want R7's bare {7}", r.R8BestPath)
	}
	if !strings.Contains(FormatFigure1(r), "R7") {
		t.Fatal("format broken")
	}
}

func TestFigure7Safety(t *testing.T) {
	rows := Figure7()
	if len(rows) != 3 {
		t.Fatal("want 3 cases")
	}
	if rows[0].LemmaSafe || len(rows[0].Counterexample) == 0 {
		t.Fatalf("7a must be unsafe with a counterexample: %+v", rows[0])
	}
	if !rows[1].LemmaSafe || !rows[1].Prop53OK {
		t.Fatalf("7b must be safe: %+v", rows[1])
	}
	if !rows[2].LemmaSafe || !rows[2].Prop53OK {
		t.Fatalf("7c must be safe: %+v", rows[2])
	}
	if !strings.Contains(FormatFigure7(rows), "Lemma5.1") {
		t.Fatal("format broken")
	}
}

func TestTable3Shapes(t *testing.T) {
	rows := Table3()
	if len(rows) != 3 {
		t.Fatal("want 3 fabrics")
	}
	ldc := rows[2]
	if ldc.Network != "L-DC" || ldc.ToRs != 3600 || ldc.Spines != 128 || ldc.Borders != 8 {
		t.Fatalf("L-DC shape: %+v", ldc)
	}
	if ldc.Routes < 10_000_000 {
		t.Fatalf("L-DC routes = %d, want O(20M)", ldc.Routes)
	}
	if rows[0].Routes >= rows[1].Routes || rows[1].Routes >= rows[2].Routes {
		t.Fatal("route counts must grow with scale")
	}
	if !strings.Contains(FormatTable3(rows), "#Routes") {
		t.Fatal("format broken")
	}
}

func TestTable4BoundaryScales(t *testing.T) {
	rows := Table4()
	pod := rows[0]
	if pod.Borders != 4 || pod.Spines != 64 || pod.Leaves != 4 || pod.ToRs != 16 {
		t.Fatalf("one-pod row: %+v", pod)
	}
	if pod.Proportion > 0.02 {
		t.Fatalf("one-pod proportion %.3f > 2%%", pod.Proportion)
	}
	if pod.CostReduction < 0.90 {
		t.Fatalf("cost reduction %.2f < 90%%", pod.CostReduction)
	}
	spines := rows[1]
	if spines.Spines != 128 || spines.Borders != 8 || spines.ToRs != 0 {
		t.Fatalf("all-spines row: %+v", spines)
	}
	if spines.Proportion > 0.03 {
		t.Fatalf("all-spines proportion %.3f > 3%%", spines.Proportion)
	}
	if !strings.Contains(FormatTable4(rows), "One Pod") {
		t.Fatal("format broken")
	}
}

func TestTable4SolveBeatsOrMatchesHandPicked(t *testing.T) {
	rows := Table4Solve()
	for _, r := range rows {
		if r.VMs > r.HandVMs {
			t.Fatalf("%s: solver best %d VMs worse than hand-picked %d", r.Case, r.VMs, r.HandVMs)
		}
		if r.Devices > r.HandDevices {
			t.Fatalf("%s: solver emulates %d devices, hand-picked only %d", r.Case, r.Devices, r.HandDevices)
		}
		if r.Cert == "" {
			t.Fatalf("%s: no certificate", r.Case)
		}
	}
	// The pod case needs no spines or borders at all: strictly cheaper
	// than the upward closure the paper's table hand-picked.
	if pod := rows[0]; pod.VMs >= pod.HandVMs {
		t.Fatalf("one-pod solve should beat hand-picked: %d vs %d VMs", pod.VMs, pod.HandVMs)
	}
	if !strings.Contains(FormatTable4Solve(rows), "One Pod") {
		t.Fatal("format broken")
	}
	// Byte determinism across worker counts.
	if FormatTable4Solve(Table4Solve(1)) != FormatTable4Solve(Table4Solve(4)) {
		t.Fatal("Table4Solve output differs across worker counts")
	}
}

func TestFigure8SmokeSDC(t *testing.T) {
	points := Figure8(Figure8Config{Reps: 2, SkipMDC: true, SkipLDC: true})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	small, large := points[0], points[1]
	if small.VMs >= large.VMs {
		t.Fatalf("VM budgets not increasing: %d vs %d", small.VMs, large.VMs)
	}
	for _, p := range points {
		// Shape checks from the paper: network-ready is small (<2 min) and
		// a small fraction of mockup; route-ready dominates; clear < 2 min.
		if p.NetworkReady.P50 <= 0 || p.NetworkReady.P50 > 2*time.Minute {
			t.Fatalf("%s/%d network-ready = %v", p.DC, p.VMs, p.NetworkReady)
		}
		if p.RouteReady.P50 < p.NetworkReady.P50 {
			t.Fatalf("%s/%d route-ready %v should dominate network-ready %v",
				p.DC, p.VMs, p.RouteReady.P50, p.NetworkReady.P50)
		}
		if p.Mockup.P50 > 50*time.Minute {
			t.Fatalf("mockup = %v, paper says tens of minutes max", p.Mockup.P50)
		}
		if p.Clear.P50 <= 0 || p.Clear.P50 > 3*time.Minute {
			t.Fatalf("clear = %v", p.Clear.P50)
		}
	}
	// More VMs converge no slower (CPU contention eases).
	if large.Mockup.P50 > small.Mockup.P50+5*time.Minute {
		t.Fatalf("more VMs slower: %v vs %v", large.Mockup.P50, small.Mockup.P50)
	}
	if !strings.Contains(FormatFigure8(points), "route-ready") {
		t.Fatal("format broken")
	}
}

func TestFigure9Shape(t *testing.T) {
	series := Figure9(8, true)
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	if len(s.MinutesP95) < 5 {
		t.Fatalf("curve too short: %d minutes", len(s.MinutesP95))
	}
	// Figure 9 shape: a busy plumbing+firmware-init phase early (after VM
	// provisioning), then a quiet convergence tail.
	peak, peakAt := 0.0, 0
	for m, u := range s.MinutesP95 {
		if u > peak {
			peak, peakAt = u, m
		}
	}
	if peak < 0.8 {
		t.Fatalf("no busy phase: peak p95 = %.2f", peak)
	}
	if peakAt > 2*len(s.MinutesP95)/3 {
		t.Fatalf("peak at minute %d of %d — busy phase should come early", peakAt, len(s.MinutesP95))
	}
	tail := s.MinutesP95[len(s.MinutesP95)-1]
	if tail > peak/2 {
		t.Fatalf("tail %.2f not quiet vs peak %.2f", tail, peak)
	}
	if !strings.Contains(FormatFigure9(series), "VMs") {
		t.Fatal("format broken")
	}
}

func TestSec83Measurements(t *testing.T) {
	r := Sec83()
	if r.TwoLayerReload != firmware.ReloadDuration {
		t.Fatalf("two-layer reload = %v, want %v", r.TwoLayerReload, firmware.ReloadDuration)
	}
	if r.StrawmanReload < r.TwoLayerReload+10*time.Second {
		t.Fatalf("strawman %v should exceed two-layer %v by >= 15s", r.StrawmanReload, r.TwoLayerReload)
	}
	for _, rec := range []time.Duration{r.RecoveryDense, r.RecoverySparse} {
		if rec < time.Second || rec > 60*time.Second {
			t.Fatalf("recovery %v outside the paper's 10-50s order", rec)
		}
	}
	if r.RecoveryDense < r.RecoverySparse {
		t.Fatalf("denser packing should recover slower: %v vs %v", r.RecoveryDense, r.RecoverySparse)
	}
	if !strings.Contains(FormatSec83(r), "Reload") {
		t.Fatal("format broken")
	}
}

func TestCrossValidateSec9(t *testing.T) {
	r := CrossValidate()
	if r.StrictDiffs == 0 {
		t.Fatal("arrival-order non-determinism produced no strict diffs — §9 effect lost")
	}
	if r.ECMPAwareDiffs != 0 {
		t.Fatalf("ECMP-aware comparator flagged %d diffs, want 0", r.ECMPAwareDiffs)
	}
	if r.VerifierAgreement < 0.99 {
		t.Fatalf("healthy-fabric agreement %.2f < 0.99", r.VerifierAgreement)
	}
	if r.ComparedEntries == 0 {
		t.Fatal("nothing compared")
	}
	if !strings.Contains(FormatCrossValidate(r), "ECMP-aware") {
		t.Fatal("format broken")
	}
}
