package experiments

import (
	"fmt"
	"time"

	"crystalnet/internal/cloud"
	"crystalnet/internal/core"
	"crystalnet/internal/parallel"
	"crystalnet/internal/topo"
)

// RunResult is one full emulation lifecycle measurement.
type RunResult struct {
	Metrics core.Metrics
	Clear   time.Duration
	// CPUByMinute is the p95 per-VM utilization per minute from mockup
	// start (Figure 9's series).
	CPUByMinute []float64
	Devices     int
	VMs         int
	Events      uint64
}

// runMockupOnce provisions, mocks up, converges and clears one whole-DC
// emulation with the production vendor images, returning all measurements.
func runMockupOnce(spec topo.ClosSpec, vmCount int, seed int64) RunResult {
	n := topo.GenerateClos(spec)
	topo.AttachWAN(n, spec, 2)

	o := core.New(core.Options{Seed: seed, VMCount: vmCount})
	prep, err := o.Prepare(core.PrepareInput{Network: n})
	if err != nil {
		panic(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		panic(err)
	}
	metrics, err := em.RunUntilConverged(0)
	if err != nil {
		panic(err)
	}
	// CPU series over the mockup window (Figure 9 plots 30 minutes).
	minutes := int(metrics.Mockup/time.Minute) + 2
	if minutes > 40 {
		minutes = 40
	}
	cpu := make([]float64, minutes)
	for m := 0; m < minutes; m++ {
		cpu[m] = o.Cloud.UtilizationP95(m)
	}

	clearStart := o.Eng.Now()
	em.Clear(nil)
	o.Eng.Run(0)
	clear := em.ClearedAt.Sub(clearStart)
	o.Destroy(prep)

	return RunResult{
		Metrics: metrics, Clear: clear, CPUByMinute: cpu,
		Devices: len(em.Devices), VMs: len(prep.VMs()),
		Events: o.Eng.Fired(),
	}
}

// Figure8Config scopes the latency sweep.
type Figure8Config struct {
	// Reps per configuration (the paper uses 10).
	Reps int
	// LDCScale divides L-DC's pod count to fit the measurement host;
	// 1 runs the paper's full 4636-device fabric.
	LDCScale int
	// SkipLDC drops the largest fabric (for quick bench runs).
	SkipLDC bool
	// SkipMDC drops the medium fabric too (smoke runs).
	SkipMDC bool
	// Workers bounds the worker pool fanning reps across cores; <= 0 means
	// GOMAXPROCS. Each rep is an independent engine with its own seed, so
	// results are identical at any pool size.
	Workers int
}

// Figure8Point is one bar group of Figure 8: a DC size at a VM budget.
type Figure8Point struct {
	DC      string
	Devices int
	VMs     int
	Reps    int

	NetworkReady Percentiles
	RouteReady   Percentiles
	Mockup       Percentiles
	Clear        Percentiles
}

// Figure8 sweeps {S-DC, M-DC, L-DC} x {small, large VM cluster} and reports
// the p10/50/90 of network-ready, route-ready, mockup and clear latencies —
// the reproduction of the paper's Figure 8. VM budgets follow the paper
// (S-DC/5,10; M-DC/50,100; L-DC/500,1000) scaled with the fabric.
func Figure8(cfg Figure8Config) []Figure8Point {
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	if cfg.LDCScale <= 0 {
		cfg.LDCScale = 8
	}
	type sweep struct {
		spec topo.ClosSpec
		vms  []int
	}
	sweeps := []sweep{{topo.SDC(), []int{5, 10}}}
	if !cfg.SkipMDC {
		sweeps = append(sweeps, sweep{topo.MDC(), []int{50, 100}})
	}
	if !cfg.SkipLDC {
		ldc := topo.LDCScaled(cfg.LDCScale)
		// Paper densities: 500 VMs ≈ devices/9.3, 1000 ≈ devices/4.6.
		d := ldc.NumDevices()
		sweeps = append(sweeps, sweep{ldc, []int{d*500/4636 + 1, d*1000/4636 + 1}})
	}

	// Flatten the sweep into one job per (config, rep): every job is an
	// independent engine, so the pool can run them in any order while the
	// results land at their job index and aggregation stays deterministic.
	type job struct {
		spec topo.ClosSpec
		vms  int
		seed int64
	}
	var jobs []job
	for _, s := range sweeps {
		for _, vms := range s.vms {
			for rep := 0; rep < cfg.Reps; rep++ {
				jobs = append(jobs, job{spec: s.spec, vms: vms, seed: int64(1000 + rep)})
			}
		}
	}
	results := parallel.Map(len(jobs), cfg.Workers, func(i int) RunResult {
		return runMockupOnce(jobs[i].spec, jobs[i].vms, jobs[i].seed)
	})

	var out []Figure8Point
	for base := 0; base < len(jobs); base += cfg.Reps {
		var nr, rr, mu, cl []time.Duration
		var devices, actualVMs int
		for _, r := range results[base : base+cfg.Reps] {
			nr = append(nr, r.Metrics.NetworkReady)
			rr = append(rr, r.Metrics.RouteReady)
			mu = append(mu, r.Metrics.Mockup)
			cl = append(cl, r.Clear)
			devices, actualVMs = r.Devices, r.VMs
		}
		out = append(out, Figure8Point{
			DC: jobs[base].spec.Name, Devices: devices, VMs: actualVMs, Reps: cfg.Reps,
			NetworkReady: percentiles(nr), RouteReady: percentiles(rr),
			Mockup: percentiles(mu), Clear: percentiles(cl),
		})
	}
	return out
}

// FormatFigure8 renders the latency table.
func FormatFigure8(points []Figure8Point) string {
	var cells [][]string
	for _, p := range points {
		cells = append(cells, []string{
			fmt.Sprintf("%s/%d", p.DC, p.VMs),
			fmt.Sprintf("%d", p.Devices),
			p.NetworkReady.String(), p.RouteReady.String(), p.Mockup.String(), p.Clear.String(),
		})
	}
	return table([]string{"DC/#VMs", "Devices", "network-ready", "route-ready", "mockup", "clear"}, cells)
}

// Figure9Series is one CPU-over-time curve.
type Figure9Series struct {
	DC          string
	VMs         int
	MinutesP95  []float64
	CostPerHour float64
}

// Figure9 measures the 95th-percentile per-VM CPU utilization minute by
// minute during Mockup for each DC size — the paper's Figure 9 curves
// (early plumbing+boot burst, then a long convergence tail). An optional
// workers argument bounds the pool fanning the DC sizes across cores
// (default GOMAXPROCS).
func Figure9(ldcScale int, skipLarge bool, workers ...int) []Figure9Series {
	if ldcScale <= 0 {
		ldcScale = 8
	}
	type cse struct {
		spec topo.ClosSpec
		vms  int
	}
	cases := []cse{{topo.SDC(), 5}}
	if !skipLarge {
		cases = append(cases, cse{topo.MDC(), 50})
		ldc := topo.LDCScaled(ldcScale)
		cases = append(cases, cse{ldc, ldc.NumDevices()*500/4636 + 1})
	}
	w := 0
	if len(workers) > 0 {
		w = workers[0]
	}
	return parallel.Map(len(cases), w, func(i int) Figure9Series {
		c := cases[i]
		r := runMockupOnce(c.spec, c.vms, 99)
		return Figure9Series{
			DC: c.spec.Name, VMs: r.VMs, MinutesP95: r.CPUByMinute,
			CostPerHour: float64(r.VMs) * cloud.SKUStandard.PricePerHour,
		}
	})
}

// FormatFigure9 renders each curve as a sparkline-ish row of percentages.
func FormatFigure9(series []Figure9Series) string {
	var b []byte
	for _, s := range series {
		b = append(b, fmt.Sprintf("%s / %d VMs ($%.0f/h):\n  min: ", s.DC, s.VMs, s.CostPerHour)...)
		for m, u := range s.MinutesP95 {
			if m > 0 && m%10 == 0 {
				b = append(b, "\n       "...)
			}
			b = append(b, fmt.Sprintf("%2d:%3.0f%% ", m, u*100)...)
		}
		b = append(b, '\n')
	}
	return string(b)
}
