package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"crystalnet/internal/bgp"
	"crystalnet/internal/core"
	"crystalnet/internal/rib"
	"crystalnet/internal/topo"
)

// This file is the DESIGN.md §10 scale benchmark: converge one whole fabric
// (S-DC through L-DC) wall-clock-measured, with the process memory counters
// that motivated global attrs interning and the Dense RIB layout. Unlike
// the Figure 8 sweep, which reports virtual-time latencies, this one
// reports *host* costs — wall-clock, live heap, allocation volume, peak
// RSS — because those are what bound the fabric size one machine can hold.

// ScaleConfig selects one fabric for the scale benchmark.
type ScaleConfig struct {
	// Spec is the fabric to converge (topo.SDC/MDC/LDCScaled).
	Spec topo.ClosSpec
	// Shards, when positive, runs convergence sharded with this many
	// workers (core.Options.Shards); 0 uses the classic single engine.
	Shards int
	// Seed seeds the emulation (0 means 1).
	Seed int64
	// Baseline additionally runs a non-interned pass for the memory
	// comparison. It runs AFTER the interned pass: peak RSS is monotonic
	// per process, so the cheaper configuration must be measured first.
	Baseline bool
}

// ScaleResult is one measured convergence at scale.
type ScaleResult struct {
	Fabric   string `json:"fabric"`
	Devices  int    `json:"devices"`
	VMs      int    `json:"vms"`
	Interned bool   `json:"interned"`
	Shards   int    `json:"shards"`

	// WallClock is host time for mockup+convergence; RouteReady is the
	// virtual-time metric for cross-checking against Figure 8.
	WallClock  time.Duration `json:"wall_clock_ns"`
	RouteReady time.Duration `json:"route_ready_ns"`
	Events     uint64        `json:"events"`

	// PeakHeapBytes is the maximum HeapAlloc sampled while the pass ran —
	// the paper-facing "can one machine hold this fabric" number, covering
	// both retained state and allocation churn between GCs. LiveHeapBytes
	// is HeapAlloc after a forced GC at convergence — the retained routing
	// state alone. TotalAllocBytes is the pass's allocation volume
	// (TotalAlloc delta). PeakRSSKB is ru_maxrss, monotonic over the
	// process lifetime.
	PeakHeapBytes   uint64 `json:"peak_heap_bytes"`
	LiveHeapBytes   uint64 `json:"live_heap_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	PeakRSSKB       int64  `json:"peak_rss_kb"`

	InternHits    uint64 `json:"intern_hits"`
	InternMisses  uint64 `json:"intern_misses"`
	InternSize    int    `json:"intern_size"`
	RIBDenseBytes int64  `json:"rib_dense_bytes"`
}

// Scale converges cfg.Spec once interned (and, with cfg.Baseline, once
// non-interned) and reports the host-cost measurements. Interning is
// restored to its default (on) before returning.
func Scale(cfg ScaleConfig) []ScaleResult {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	defer bgp.SetInterning(true)
	defer rib.SetHopSharing(true)
	out := []ScaleResult{runScaleOnce(cfg, true)}
	if cfg.Baseline {
		out = append(out, runScaleOnce(cfg, false))
	}
	return out
}

func runScaleOnce(cfg ScaleConfig, interned bool) ScaleResult {
	// The ablation toggles the whole §10 memory model, not just attrs:
	// hop-group sharing in the FIBs rides the same switch, and sessions
	// latch the per-route map layout from it (bgp.Peer.mapRIBs), so the
	// baseline pass reproduces the seed's bytes-per-route end to end.
	bgp.SetInterning(interned)
	rib.SetHopSharing(interned)
	// Run both passes at GOGC=50 so peak heap tracks retained state rather
	// than GC headroom: at the default GOGC=100 the collector lets the heap
	// double past live before collecting, and that headroom — pure
	// allocation churn — would dominate the peak of whichever pass churns
	// more relative to what it retains. Applied identically to both passes,
	// so the comparison stays apples-to-apples.
	defer debug.SetGCPercent(debug.SetGCPercent(50))
	ribBefore := rib.Stats().DenseBytes
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Sample HeapAlloc on a wall-clock ticker while the pass runs. The
	// sampler only reads runtime stats — it never touches engine state, so
	// the emulation's determinism is unaffected.
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	var peakHeap uint64
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		var m runtime.MemStats
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peakHeap {
					peakHeap = m.HeapAlloc
				}
			}
		}
	}()

	start := time.Now()
	n := topo.GenerateClos(cfg.Spec)
	topo.AttachWAN(n, cfg.Spec, 2)
	o := core.New(core.Options{Seed: cfg.Seed, Shards: cfg.Shards})
	prep, err := o.Prepare(core.PrepareInput{Network: n})
	if err != nil {
		panic(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		panic(err)
	}
	metrics, err := em.RunUntilConverged(0)
	if err != nil {
		panic(err)
	}
	wall := time.Since(start)
	close(stopSampler)
	<-samplerDone

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > peakHeap {
		peakHeap = after.HeapAlloc
	}
	var ru syscall.Rusage
	_ = syscall.Getrusage(syscall.RUSAGE_SELF, &ru)
	hits, misses, size := bgp.InternStats()

	res := ScaleResult{
		Fabric:   cfg.Spec.Name,
		Devices:  len(em.Devices),
		VMs:      len(prep.VMs()),
		Interned: interned,
		Shards:   cfg.Shards,

		WallClock:  wall,
		RouteReady: metrics.RouteReady,
		Events:     o.Eng.Fired(),

		PeakHeapBytes:   peakHeap,
		LiveHeapBytes:   after.HeapAlloc,
		TotalAllocBytes: after.TotalAlloc - before.TotalAlloc,
		PeakRSSKB:       int64(ru.Maxrss),

		InternHits:    hits,
		InternMisses:  misses,
		InternSize:    size,
		RIBDenseBytes: rib.Stats().DenseBytes - ribBefore,
	}
	em.Teardown()
	o.Destroy(prep)
	return res
}

// FormatScale renders the scale results plus the interned/baseline live-heap
// ratio when both passes are present.
func FormatScale(rs []ScaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %8s %5s %9s %7s %11s %11s %11s %11s %9s %10s\n",
		"fabric", "devices", "vms", "interned", "shards", "wall", "peak-heap", "live-heap", "alloc", "rss-peak", "hit-rate")
	mb := func(v uint64) string { return fmt.Sprintf("%.1f MB", float64(v)/(1<<20)) }
	var interned, baseline *ScaleResult
	for i := range rs {
		r := &rs[i]
		rate := "-"
		if r.InternHits+r.InternMisses > 0 {
			rate = fmt.Sprintf("%.1f%%", 100*float64(r.InternHits)/float64(r.InternHits+r.InternMisses))
		}
		fmt.Fprintf(&b, "%-9s %8d %5d %9v %7d %11s %11s %11s %11s %9s %10s\n",
			r.Fabric, r.Devices, r.VMs, r.Interned, r.Shards,
			r.WallClock.Round(time.Millisecond),
			mb(r.PeakHeapBytes), mb(r.LiveHeapBytes), mb(r.TotalAllocBytes),
			mb(uint64(r.PeakRSSKB)*1024), rate)
		if r.Interned {
			interned = r
		} else {
			baseline = r
		}
	}
	if interned != nil && baseline != nil {
		fmt.Fprintf(&b, "\npeak heap: baseline/interned = %.2fx (live at convergence: %.2fx, alloc volume: %.2fx)\n",
			float64(baseline.PeakHeapBytes)/float64(interned.PeakHeapBytes),
			float64(baseline.LiveHeapBytes)/float64(interned.LiveHeapBytes),
			float64(baseline.TotalAllocBytes)/float64(interned.TotalAllocBytes))
	}
	return b.String()
}
