package experiments

import (
	"time"

	"crystalnet/internal/core"
	"crystalnet/internal/topo"
)

// Sec83Result holds the §8.3 measurements: device reload latency under the
// two-layer PhyNet design vs the everything-together strawman, and VM
// failure recovery times at two packing densities.
type Sec83Result struct {
	TwoLayerReload time.Duration
	StrawmanReload time.Duration
	// RecoveryDense/RecoverySparse are device+link reset times after a VM
	// failure (excluding the VM reboot itself) at ~24 and ~12 devices/VM.
	RecoveryDense  time.Duration
	RecoverySparse time.Duration
}

// Sec83 reproduces the paper's §8.3: reload a single device under both
// designs, then fail a VM at two deployment densities and measure recovery.
func Sec83() Sec83Result {
	res := Sec83Result{}
	res.TwoLayerReload = measureReload(false)
	res.StrawmanReload = measureReload(true)
	res.RecoveryDense = measureRecovery(5)
	res.RecoverySparse = measureRecovery(10)
	return res
}

func buildSDC(opts core.Options, vms int) (*core.Orchestrator, *core.Emulation) {
	spec := topo.SDC()
	n := topo.GenerateClos(spec)
	topo.AttachWAN(n, spec, 2)
	opts.VMCount = vms
	o := core.New(opts)
	prep, err := o.Prepare(core.PrepareInput{Network: n})
	if err != nil {
		panic(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		panic(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		panic(err)
	}
	return o, em
}

func measureReload(strawman bool) time.Duration {
	o, em := buildSDC(core.Options{Seed: 5, StrawmanReload: strawman}, 10)
	start := o.Eng.Now()
	var took time.Duration
	if err := em.ReloadDevice("leaf-p0-0", nil, func() {
		took = o.Eng.Now().Sub(start)
	}); err != nil {
		panic(err)
	}
	o.Eng.Run(0)
	return took
}

func measureRecovery(vms int) time.Duration {
	o, em := buildSDC(core.Options{Seed: 6}, vms)
	// Fail the VM hosting the first ToR.
	var vmName string
	s, err := em.Login("tor-p0-0")
	if err != nil {
		panic(err)
	}
	_ = s
	for _, vm := range o.Cloud.VMs() {
		if vm.Group == "ctnrb" {
			vmName = vm.Name
			o.Cloud.Fail(vm)
			break
		}
	}
	_ = vmName
	if _, err := em.RunUntilConverged(0); err != nil {
		panic(err)
	}
	recs := em.Recoveries()
	if len(recs) == 0 {
		panic("sec83: no recovery recorded")
	}
	return recs[0]
}

// FormatSec83 renders the measurements.
func FormatSec83(r Sec83Result) string {
	rows := [][]string{
		{"Reload (two-layer PhyNet design)", r.TwoLayerReload.Round(time.Millisecond).String()},
		{"Reload (strawman: recreate interfaces)", r.StrawmanReload.Round(time.Millisecond).String()},
		{"VM recovery, dense packing (~24 dev/VM)", r.RecoveryDense.Round(time.Second).String()},
		{"VM recovery, sparse packing (~12 dev/VM)", r.RecoverySparse.Round(time.Second).String()},
	}
	return table([]string{"Measurement", "Latency"}, rows)
}
