package crystalnet_test

import (
	"strings"
	"testing"
	"time"

	"crystalnet"
)

// TestPublicAPILifecycle drives the full Table 2 workflow purely through
// the public facade, as a downstream user would.
func TestPublicAPILifecycle(t *testing.T) {
	network := crystalnet.GenerateClos(crystalnet.ClosSpec{
		Name: "api", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
		SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	})
	o := crystalnet.New(crystalnet.Options{Seed: 2})
	prep, err := o.Prepare(crystalnet.PrepareInput{Network: network})
	if err != nil {
		t.Fatal(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := em.RunUntilConverged(0)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Mockup <= 0 || metrics.NetworkReady <= 0 {
		t.Fatalf("metrics: %+v", metrics)
	}

	// Monitor.
	fibs := em.PullFIBs()
	if fibs["tor-p0-0"].Len() == 0 {
		t.Fatal("empty FIB")
	}
	states := em.PullStates()
	for name, st := range states {
		if st.State != crystalnet.DeviceRunning {
			t.Fatalf("%s not running", name)
		}
	}

	// Control: telemetry probe.
	dst := network.MustDevice("tor-p1-0").Originated[0]
	if _, err := em.InjectPackets("tor-p0-0", crystalnet.PacketMeta{
		Src: em.Devices["tor-p0-0"].Config().Loopback.Addr, Dst: dst.Addr + 1,
		Proto: crystalnet.ProtoUDP, SrcPort: 9, DstPort: 9, TTL: 16,
	}, 1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	em.RunUntilConverged(0)
	paths := crystalnet.ComputePaths(em.PullPackets())
	if len(paths) != 1 || !paths[0].Delivered {
		t.Fatalf("probe: %+v", paths)
	}

	// Management plane.
	s, err := em.Login("tor-p0-0")
	if err != nil {
		t.Fatal(err)
	}
	if out, err := s.Exec("show version"); err != nil || !strings.Contains(out, "tor-p0-0") {
		t.Fatalf("CLI: %q %v", out, err)
	}

	em.Clear(nil)
	o.Eng.Run(0)
	o.Destroy(prep)
	if o.Cloud.Running() != 0 {
		t.Fatal("VMs leaked")
	}
}

// TestPublicAPIBoundary exercises the boundary helpers from the facade.
func TestPublicAPIBoundary(t *testing.T) {
	n := crystalnet.GenerateClos(crystalnet.LDC())
	var pod []string
	for _, d := range n.DevicesInPod(0) {
		pod = append(pod, d.Name)
	}
	emu, err := crystalnet.FindSafeDCBoundary(n, pod)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := crystalnet.BuildPlan(n, emu)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckSafe(); err != nil {
		t.Fatal(err)
	}
	if s := plan.Scale(); s.TotalEmulated != 88 {
		t.Fatalf("one-pod closure = %d devices, want 88 (Table 4)", s.TotalEmulated)
	}
}

// TestPublicAPIVendorImages checks the image catalog surface.
func TestPublicAPIVendorImages(t *testing.T) {
	img, err := crystalnet.VendorImage("ctnrb", "dev-arp-trap")
	if err != nil || !img.Bugs.ARPTrapBroken {
		t.Fatalf("image: %+v %v", img, err)
	}
	if _, err := crystalnet.DefaultImage("vma"); err != nil {
		t.Fatal(err)
	}
	if _, err := crystalnet.VendorImage("nope", "1"); err == nil {
		t.Fatal("unknown image accepted")
	}
}

// TestPublicAPIConfigs checks config generation via the facade.
func TestPublicAPIConfigs(t *testing.T) {
	n := crystalnet.GenerateClos(crystalnet.SDC())
	cfgs := crystalnet.GenerateConfigs(n)
	if len(cfgs) != n.NumDevices() {
		t.Fatal("config count mismatch")
	}
	if cfgs["tor-p0-0"].ASN == 0 {
		t.Fatal("empty config")
	}
	if crystalnet.MustParseIP("10.0.0.1") == 0 || crystalnet.MustParsePrefix("10.0.0.0/8").Len != 8 {
		t.Fatal("parse helpers broken")
	}
}

// Example_validationWorkflow sketches the Figure 3 loop: mock up a safe
// boundary, apply a change, verify, and roll back on failure.
func Example_validationWorkflow() {
	network := crystalnet.GenerateClos(crystalnet.SDC())
	o := crystalnet.New(crystalnet.Options{Seed: 1})

	// Operators name only the devices they are changing; Algorithm 1 grows
	// a provably safe boundary around them.
	prep, _ := o.Prepare(crystalnet.PrepareInput{
		Network:     network,
		MustEmulate: []string{"tor-p0-0", "tor-p0-1"},
	})
	em, _ := o.Mockup(prep, false)
	em.RunUntilConverged(0)

	// Snapshot, change, verify, and roll back if behaviour diverged.
	baseline := em.Save()
	em.ReloadDevice("leaf-p0-0", nil /* the new config under test */, nil)
	em.RunUntilConverged(0)
	if diffs := em.DiffAgainst(baseline); len(diffs) > 0 {
		em.RestoreConfigs(baseline)
	}
	em.Clear(nil)
	o.Destroy(prep)
}
