module crystalnet

go 1.24
