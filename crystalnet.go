// Package crystalnet is the public facade of the CrystalNet network
// emulator — a from-scratch Go reproduction of "CrystalNet: Faithfully
// Emulating Large Production Networks" (SOSP 2017).
//
// CrystalNet boots vendor device firmware inside PhyNet container sandboxes
// on (simulated) cloud VMs, wires them into the production topology with
// VXLAN virtual links, loads production configurations, surrounds the
// emulation with static BGP speakers at a provably safe boundary, and lets
// operators rehearse network operations — firmware upgrades, configuration
// changes, failure drills — with the same tools they use in production.
//
// Typical use:
//
//	o := crystalnet.New(crystalnet.Options{Seed: 1})
//	prep, err := o.Prepare(crystalnet.PrepareInput{
//		Network:     network,            // production topology snapshot
//		MustEmulate: []string{"tor-p7-0"}, // Algorithm 1 grows a safe boundary
//	})
//	em, err := o.Mockup(prep, false)
//	metrics, err := em.RunUntilConverged(0)
//	// ... validate: em.PullFIBs(), em.InjectPackets(...), em.Login(...)
//	em.Clear(nil)
//	o.Destroy(prep)
//
// The facade re-exports the orchestration API from internal/core plus the
// domain types a validation workflow needs. Deeper substrates (the BGP and
// OSPF stacks, the PhyNet layer, the boundary theory) live in internal/
// packages and are documented there.
package crystalnet

import (
	"io"

	"crystalnet/internal/bgp"
	"crystalnet/internal/boundary"
	"crystalnet/internal/cloud"
	"crystalnet/internal/config"
	"crystalnet/internal/core"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/obs"
	"crystalnet/internal/rib"
	"crystalnet/internal/scenario"
	"crystalnet/internal/serve"
	"crystalnet/internal/speaker"
	"crystalnet/internal/telemetry"
	"crystalnet/internal/topo"
	"crystalnet/internal/vendors"
)

// Orchestration API (Table 2 of the paper).
type (
	// Orchestrator is the CrystalNet brain: Prepare/Mockup/Destroy.
	Orchestrator = core.Orchestrator
	// Options tune seeding, VM packing, bridge backend and ablations.
	Options = core.Options
	// PrepareInput is the production snapshot Prepare ingests.
	PrepareInput = core.PrepareInput
	// Preparation is Prepare's output and Mockup's input.
	Preparation = core.Preparation
	// Emulation is a running mocked-up network with the Control and
	// Monitor APIs.
	Emulation = core.Emulation
	// Metrics are the §8.1 latency measurements.
	Metrics = core.Metrics
	// RetryPolicy supervises cloud VM boots: per-attempt deadlines,
	// deterministic jittered backoff, and replacement after the attempt
	// budget. The zero value reproduces unsupervised boots byte-for-byte.
	RetryPolicy = cloud.RetryPolicy
	// FaultOutcome reports whether an injected VM fault fired immediately
	// or was queued for the VM's next Running transition.
	FaultOutcome = core.FaultOutcome
)

// Outcomes of Emulation.InjectVMFailure.
const (
	FaultFired  = core.FaultFired
	FaultQueued = core.FaultQueued
)

// DefaultRetryPolicy returns the boot-supervision defaults used when a
// non-zero RetryPolicy leaves fields unset.
func DefaultRetryPolicy() RetryPolicy { return cloud.DefaultRetryPolicy }

// Topology modelling.
type (
	// Network is a device/link topology.
	Network = topo.Network
	// Device is one network device.
	Device = topo.Device
	// ClosSpec parameterizes a generated Clos datacenter fabric.
	ClosSpec = topo.ClosSpec
	// Layer is a device's fabric tier.
	Layer = topo.Layer
	// RegionSpec parameterizes the §7 Case-1 multi-DC region.
	RegionSpec = topo.RegionSpec
)

// Fabric layers re-exported for topology construction.
const (
	LayerHost     = topo.LayerHost
	LayerToR      = topo.LayerToR
	LayerLeaf     = topo.LayerLeaf
	LayerSpine    = topo.LayerSpine
	LayerBorder   = topo.LayerBorder
	LayerBackbone = topo.LayerBackbone
	LayerWAN      = topo.LayerWAN
	LayerExternal = topo.LayerExternal
)

// Configuration and validation types.
type (
	// DeviceConfig is a vendor-neutral device configuration.
	DeviceConfig = config.DeviceConfig
	// PacketMeta is the 5-tuple of an injected probe.
	PacketMeta = dataplane.PacketMeta
	// CaptureRecord is one telemetry observation.
	CaptureRecord = firmware.CaptureRecord
	// Path is a reconstructed probe trajectory.
	Path = telemetry.Path
	// Snapshot is a pulled forwarding table.
	Snapshot = rib.Snapshot
	// Announcement is a recorded boundary route a speaker replays.
	Announcement = speaker.Announcement
	// Plan classifies devices around an emulation boundary.
	Plan = boundary.Plan
	// BoundarySolveOptions tunes SolveBoundary; BoundarySolveResult is its
	// ranked output.
	BoundarySolveOptions = boundary.SolveOptions
	BoundarySolveResult  = boundary.SolveResult
)

// Configuration building blocks re-exported for scenario authoring.
type (
	// Aggregate is an aggregate-address statement (the Figure 1 feature).
	Aggregate = config.Aggregate
	// ACL is an ordered packet filter; ACLRule one entry; ACLBinding its
	// interface attachment.
	ACL        = dataplane.ACL
	ACLRule    = dataplane.ACLRule
	ACLBinding = config.ACLBinding
	// Policy is a BGP route-map; Rule one entry; RuleMatch its match block.
	Policy    = bgp.Policy
	Rule      = bgp.Rule
	RuleMatch = bgp.Match
	// Prefix is an IPv4 CIDR prefix; IP an IPv4 address.
	Prefix = netpkt.Prefix
	IP     = netpkt.IP
	// Image is a bootable vendor firmware image.
	Image = firmware.VendorImage
	// DeviceState is the firmware lifecycle state.
	DeviceState = firmware.DeviceState
)

// ACL and policy verdicts, binding directions and firmware states.
const (
	ACLPermit = dataplane.ACLPermit
	ACLDeny   = dataplane.ACLDeny
	Permit    = bgp.Permit
	Deny      = bgp.Deny
	In        = config.In
	Out       = config.Out

	DeviceRunning = firmware.DeviceRunning
	DeviceCrashed = firmware.DeviceCrashed
	DeviceStopped = firmware.DeviceStopped

	// ProtoUDP/ProtoTCP/ProtoICMP are IP protocol numbers for probe specs.
	ProtoUDP  = netpkt.ProtoUDP
	ProtoTCP  = netpkt.ProtoTCP
	ProtoICMP = netpkt.ProtoICMP
)

// MustParsePrefix and MustParseIP parse CIDR/dotted-quad literals.
func MustParsePrefix(s string) Prefix { return netpkt.MustParsePrefix(s) }

// MustParseIP parses a dotted-quad IPv4 literal.
func MustParseIP(s string) IP { return netpkt.MustParseIP(s) }

// GenerateRegion builds the multi-datacenter region of §7 Case 1.
func GenerateRegion(spec RegionSpec) *Network { return topo.GenerateRegion(spec) }

// New creates an orchestrator.
func New(opts Options) *Orchestrator { return core.New(opts) }

// GenerateClos builds a Clos datacenter fabric from a spec.
func GenerateClos(spec ClosSpec) *Network { return topo.GenerateClos(spec) }

// NewNetwork returns an empty topology for hand-built scenarios.
func NewNetwork(name string) *Network { return topo.NewNetwork(name) }

// SDC, MDC and LDC are the paper's evaluation fabrics (Table 3).
func SDC() ClosSpec { return topo.SDC() }

// MDC returns the medium datacenter spec.
func MDC() ClosSpec { return topo.MDC() }

// LDC returns the large datacenter spec.
func LDC() ClosSpec { return topo.LDC() }

// LDCScaled returns L-DC with its pod count divided by factor, preserving
// the spine/border shape (the fabric the scale benchmarks and boundary
// experiments run when the full 4636-device L-DC will not fit).
func LDCScaled(factor int) ClosSpec { return topo.LDCScaled(factor) }

// FindSafeDCBoundary is Algorithm 1: grow a must-emulate set to a safe
// boundary by walking child-to-parent edges.
func FindSafeDCBoundary(n *Network, must []string) (map[string]bool, error) {
	return boundary.FindSafeDCBoundary(n, must)
}

// BuildPlan classifies devices relative to an emulated set and exposes the
// §5.2 safety checks.
func BuildPlan(n *Network, emulated map[string]bool) (*Plan, error) {
	return boundary.BuildPlan(n, emulated)
}

// SolveBoundary searches for the cheapest certified-safe emulated set
// containing targets, ranked by VM count and hourly cost — the automated
// alternative to hand-picking a must-emulate set for FindSafeDCBoundary.
func SolveBoundary(n *Network, targets []string, opts BoundarySolveOptions) (*BoundarySolveResult, error) {
	return boundary.Solve(n, targets, opts)
}

// ComputePaths reconstructs probe paths from pulled captures.
func ComputePaths(records []CaptureRecord) []Path { return telemetry.ComputePaths(records) }

// GenerateConfigs derives production-style configurations from a topology.
func GenerateConfigs(n *Network) map[string]*DeviceConfig { return config.Generate(n) }

// Scenario engine: declarative operation rehearsals and chaos campaigns
// (internal/scenario). A Scenario is a JSON-codable rehearsal spec; the
// runner executes it deterministically on the simulation clock and emits a
// structured ScenarioReport.
type (
	// Scenario is a declarative rehearsal spec.
	Scenario = scenario.Spec
	// ScenarioStep is one operation or assertion in a scenario.
	ScenarioStep = scenario.Step
	// ScenarioOptions tune one run (seed override, image pins, event cap).
	ScenarioOptions = scenario.Options
	// ScenarioImage pins a vendor image by name/version inside a spec.
	ScenarioImage = scenario.ImageRef
	// ScenarioReport is a run's structured JSON-ready outcome.
	ScenarioReport = scenario.Report
	// ConvergedScenario is a reusable converged baseline: Converge once,
	// then fork per variant instead of re-converging (see ConvergeScenario).
	ConvergedScenario = scenario.Converged
	// CampaignConfig parameterizes a chaos campaign.
	CampaignConfig = scenario.CampaignConfig
	// CampaignReport aggregates a campaign's per-run reports.
	CampaignReport = scenario.CampaignReport
)

// LoadScenario reads and validates a scenario spec from a JSON file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// ParseScenario decodes and validates a scenario spec from JSON bytes.
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Parse(data) }

// RunScenario executes a rehearsal spec and returns its report.
func RunScenario(sp *Scenario, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.Run(sp, opts)
}

// ConvergeScenario builds sp's fabric and drives it to route-ready once,
// returning a baseline whose Run method forks the converged emulation per
// variant. Forked reports are byte-identical to fresh same-seed runs.
func ConvergeScenario(sp *Scenario, opts ScenarioOptions) (*ConvergedScenario, error) {
	return scenario.Converge(sp, opts)
}

// ChaosCampaign expands a base spec into seeded fault sequences and runs
// them across a worker pool; reports are identical for any worker count.
func ChaosCampaign(base *Scenario, cfg CampaignConfig) (*CampaignReport, error) {
	return scenario.Chaos(base, cfg)
}

// CheckScenarioForkable reports whether sp can run against a forked
// converged baseline (no MTBF faults, no attach-device steps) — the test
// the warm pool and chaos Reuse apply before forking.
func CheckScenarioForkable(sp *Scenario, opts ScenarioOptions) error {
	return scenario.CheckForkable(sp, opts)
}

// ErrCanceled is returned (wrapped) by scenario runs whose
// ScenarioOptions.Cancel channel fired; the abandoned emulation has been
// torn down deterministically.
var ErrCanceled = core.ErrCanceled

// Rehearsal service (internal/serve, docs/API.md): crystald's HTTP layer.
// A RehearsalServer keeps converged base fabrics warm in a checkpoint
// pool and serves rehearsal/chaos requests whose response bytes are
// identical to the batch crystalctl commands.
type (
	// RehearsalServer serves /v1/rehearse, /v1/chaos, /v1/status,
	// /v1/pool/invalidate, /healthz and /metrics.
	RehearsalServer = serve.Server
	// ServeConfig tunes pool capacity, concurrency quotas and metrics.
	ServeConfig = serve.Config
	// WarmPool is the checkpoint pool behind a RehearsalServer.
	WarmPool = serve.Pool
)

// NewRehearsalServer builds the crystald HTTP server and its warm pool.
func NewRehearsalServer(cfg ServeConfig) *RehearsalServer { return serve.NewServer(cfg) }

// Monitor plane: the deterministic tracer and metrics registry
// (internal/obs, docs/OBSERVABILITY.md). Pass a Recorder via Options.Rec or
// ScenarioOptions.Rec to trace a run; nil keeps tracing disabled at zero
// cost. Traces are stamped with simulation virtual time, so identically-
// seeded runs export byte-identical files.
type (
	// Recorder collects sim-time-stamped spans, events and metrics.
	Recorder = obs.Recorder
	// TracePart names one recorder in a multi-run Chrome trace export
	// (one trace-viewer process per part).
	TracePart = obs.Part
	// LiveMetrics is the wall-clock, concurrency-safe metrics registry the
	// rehearsal service exposes at /metrics (sibling of the deterministic
	// sim-time Recorder).
	LiveMetrics = obs.Live
)

// NewRecorder returns an empty trace recorder.
func NewRecorder() *Recorder { return obs.New() }

// NewLiveMetrics returns an empty wall-clock metrics registry.
func NewLiveMetrics() *LiveMetrics { return obs.NewLive() }

// WriteChromeTrace renders one or more recorders as a single Chrome
// trace_event file — open it in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Campaigns pass one part per run.
func WriteChromeTrace(w io.Writer, parts ...TracePart) error {
	return obs.WriteChrome(w, parts...)
}

// VendorImage returns a vendor's device software image by exact version;
// DefaultImage returns its production release.
func VendorImage(name, version string) (firmware.VendorImage, error) {
	return vendors.Get(name, version)
}

// DefaultImage returns the vendor's production image.
func DefaultImage(name string) (firmware.VendorImage, error) { return vendors.Default(name) }
