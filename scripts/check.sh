#!/bin/sh
# check.sh — tier-1 style verification: formatting, build, vet, full tests,
# a race pass over the packages that touch concurrency (the experiment
# worker pool, the engine it drives, the harness that fans runs across it,
# and the scenario engine's chaos campaigns), the trace-determinism smoke,
# and the documentation gate (cmd/doccheck).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-touching packages)"
go test -race ./internal/parallel/ ./internal/sim/ ./internal/experiments/ ./internal/checkpoint/

echo "== concurrent-fork smoke under -race"
go test -race ./internal/core/ -run 'TestCheckpoint|TestFork|TestClearAfterFork|TestConcurrentForks'

echo "== scenario smoke under -race"
go test -race ./internal/scenario/ -run 'TestSmoke|TestChaosSerialParallelIdentical'

echo "== fork-determinism smoke under -race (fresh vs forked, byte-compare)"
go test -race ./internal/scenario/ -run 'TestForkedRunMatchesFreshRun|TestChaosReuse'

echo "== trace-determinism smoke (same-seed traces byte-identical, incl. across a fork)"
go test ./internal/scenario/ -run 'TestTraceDeterminism|TestTraceSurvivesFork|TestChaosTraceDeterminism'

echo "== failure-path smoke under -race (MTBF campaign, lost faults, bounded recovery)"
go test -race ./internal/scenario/ -run 'TestMTBFCampaignSerialParallelIdentical|TestLostFaultFailsRun|TestFailurePathByteDeterminism'
go test -race ./internal/core/ -run 'TestDoubleFailureDuringRecovery|TestDeprovisionMidRebootAbandonsRecovery|TestRecoveryDeadline|TestSupervisedMockupConverges|TestSpeakerVMRecoveryReinjectsRoutes'

echo "== docs gate (every package carries a doc comment linking the design docs)"
go run ./cmd/doccheck

echo "OK"
