#!/bin/sh
# check.sh — tier-1 style verification: formatting, build, vet, full tests,
# a race pass over the packages that touch concurrency (the experiment
# worker pool, the engine it drives, the harness that fans runs across it,
# and the scenario engine's chaos campaigns), the trace-determinism smoke,
# and the documentation gate (cmd/doccheck).
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-touching packages)"
go test -race ./internal/parallel/ ./internal/sim/ ./internal/experiments/ ./internal/checkpoint/ \
    ./internal/obs/ ./internal/serve/ ./internal/bgp/ ./internal/rib/ ./internal/traffic/ \
    ./internal/boundary/

echo "== sealed-attrs immutability assertions (-tags crystaldebug)"
go test -tags crystaldebug ./internal/bgp/

echo "== concurrent-fork smoke under -race"
go test -race ./internal/core/ -run 'TestCheckpoint|TestFork|TestClearAfterFork|TestConcurrentForks'

echo "== scenario smoke under -race"
go test -race ./internal/scenario/ -run 'TestSmoke|TestChaosSerialParallelIdentical'

echo "== fork-determinism smoke under -race (fresh vs forked, byte-compare)"
go test -race ./internal/scenario/ -run 'TestForkedRunMatchesFreshRun|TestChaosReuse'

echo "== sharded-convergence determinism under -race (serial vs sharded, byte-compare)"
go test -race ./internal/scenario/ -run 'TestSharded' -timeout 10m
go test -race ./internal/sim/ -run 'TestShardSet' -timeout 10m

echo "== traffic-plane determinism under -race (workers/shards/fork, byte-compare)"
go test -race ./internal/scenario/ -run 'TestTraffic' -timeout 10m

echo "== trace-determinism smoke (same-seed traces byte-identical, incl. across a fork)"
go test ./internal/scenario/ -run 'TestTraceDeterminism|TestTraceSurvivesFork|TestChaosTraceDeterminism'

echo "== failure-path smoke under -race (MTBF campaign, lost faults, bounded recovery)"
go test -race ./internal/scenario/ -run 'TestMTBFCampaignSerialParallelIdentical|TestLostFaultFailsRun|TestFailurePathByteDeterminism'
go test -race ./internal/core/ -run 'TestDoubleFailureDuringRecovery|TestDeprovisionMidRebootAbandonsRecovery|TestRecoveryDeadline|TestSupervisedMockupConverges|TestSpeakerVMRecoveryReinjectsRoutes'

echo "== crystald smoke (boot, rehearse over HTTP twice, drain on SIGTERM)"
tmp=$(mktemp -d)
daemon=
cleanup() {
    if [ -n "$daemon" ] && kill -0 "$daemon" 2>/dev/null; then
        kill "$daemon" 2>/dev/null || true
        wait "$daemon" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT
go build -o "$tmp/crystald" ./cmd/crystald
go build -o "$tmp/crystalctl" ./cmd/crystalctl
"$tmp/crystald" -addr 127.0.0.1:0 -portfile "$tmp/port" 2>"$tmp/crystald.log" &
daemon=$!
i=0
while [ ! -s "$tmp/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ] || ! kill -0 "$daemon" 2>/dev/null; then
        echo "crystald failed to boot; log:" >&2
        cat "$tmp/crystald.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/port")
# First request converges the base fabric (pool miss), second forks it (hit);
# both must pass the scenario's invariants.
"$tmp/crystalctl" rehearse -server "$addr" scenarios/rehearse_smoke.json >/dev/null
"$tmp/crystalctl" rehearse -server "$addr" scenarios/rehearse_smoke.json >/dev/null
kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "crystald did not drain cleanly; log:" >&2
    cat "$tmp/crystald.log" >&2
    exit 1
fi
daemon=

echo "== boundary-solver smoke (S-DC solve, plan output byte-deterministic)"
"$tmp/crystalctl" plan -solve tor-p0-0,tor-p1-0 >"$tmp/solve1.out"
"$tmp/crystalctl" plan -solve tor-p0-0,tor-p1-0 >"$tmp/solve2.out"
if ! cmp -s "$tmp/solve1.out" "$tmp/solve2.out"; then
    echo "plan -solve output not byte-deterministic across runs:" >&2
    diff "$tmp/solve1.out" "$tmp/solve2.out" >&2 || true
    exit 1
fi
grep -q "safe-boundary solve" "$tmp/solve1.out"

echo "== docs gate (every package carries a doc comment linking the design docs)"
go run ./cmd/doccheck

# M-DC smoke: converge the 580-device fabric once, sharded, interned-only
# (no baseline pass — that doubles the wall-clock and is a bench concern,
# not a correctness gate). Skipped under SHORT=1 for quick iteration.
if [ "${SHORT:-}" != "1" ]; then
    echo "== M-DC smoke (crystalbench -scale mdc, sharded, bounded)"
    timeout 600 go run ./cmd/crystalbench -scale mdc -shards 4 -nobaseline >/dev/null

    echo "== traffic smoke (S-DC campaign under a 1M-flow matrix with assert-flow-slo)"
    timeout 600 "$tmp/crystalctl" run-scenario scenarios/traffic_slo.json >/dev/null
else
    echo "== M-DC and traffic smokes skipped (SHORT=1)"
fi

echo "OK"
