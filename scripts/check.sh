#!/bin/sh
# check.sh — tier-1 style verification: build, vet, full tests, and a race
# pass over the packages that touch concurrency (the experiment worker pool,
# the engine it drives, and the harness that fans runs across it).
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (concurrency-touching packages)"
go test -race ./internal/parallel/ ./internal/sim/ ./internal/experiments/

echo "OK"
