#!/bin/sh
# bench.sh — one-shot benchmark capture: runs the crystalbench experiment
# suite (-quick -json), the §10 M-DC scale benchmark (interned vs baseline,
# with closing runtime.MemStats), the traffic-plane benchmark (1M flows on
# S-DC, flows-settled/s), plus the Go micro-benchmarks for the hot
# packages, and merges everything into BENCH_<date>.json (gitignored) via
# cmd/benchjson.
#
#   scripts/bench.sh                 # quick suite + M-DC scale (~10 min)
#   BENCH_NOSCALE=1 scripts/bench.sh # skip the M-DC scale run (~15 s)
#   BENCH_FULL=1 scripts/bench.sh    # full Figure 8 sweep (minutes)
set -eu

cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y%m%d).json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== crystalbench -json" >&2
go build -o "$tmp/crystalbench" ./cmd/crystalbench
if [ "${BENCH_FULL:-}" = "1" ]; then
    "$tmp/crystalbench" -json >"$tmp/crystal.json"
else
    "$tmp/crystalbench" -quick -json >"$tmp/crystal.json"
fi

scale_args=""
if [ "${BENCH_NOSCALE:-}" != "1" ]; then
    echo "== crystalbench -scale mdc (wall-clock + peak heap/RSS, interned vs baseline)" >&2
    "$tmp/crystalbench" -scale mdc -json -memstats "$tmp/memstats.json" >"$tmp/scale.json"
    scale_args="-scale $tmp/scale.json -memstats $tmp/memstats.json"
fi

echo "== crystalbench -traffic (1M flows on S-DC, flows-settled/s)" >&2
"$tmp/crystalbench" -traffic 1000000 -json >"$tmp/traffic.json"
scale_args="$scale_args -traffic $tmp/traffic.json"

echo "== go micro-benchmarks" >&2
go test -run '^$' -bench . -benchmem -benchtime 0.2s \
    ./internal/trie/ ./internal/sim/ ./internal/bgp/ ./internal/rib/ \
    ./internal/obs/ ./internal/dataplane/ ./internal/p4/ >"$tmp/micro.txt"

# shellcheck disable=SC2086 # scale_args is intentionally word-split
go run ./cmd/benchjson -crystal "$tmp/crystal.json" $scale_args <"$tmp/micro.txt" >"$out"
echo "wrote $out" >&2
