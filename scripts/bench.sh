#!/bin/sh
# bench.sh — one-shot benchmark capture: runs the crystalbench experiment
# suite (-quick -json) plus the Go micro-benchmarks for the hot packages,
# and merges both into BENCH_<date>.json (gitignored) via cmd/benchjson.
#
#   scripts/bench.sh            # quick suite (~15 s)
#   BENCH_FULL=1 scripts/bench.sh   # full Figure 8 sweep (minutes)
set -eu

cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y%m%d).json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== crystalbench -json" >&2
go build -o "$tmp/crystalbench" ./cmd/crystalbench
if [ "${BENCH_FULL:-}" = "1" ]; then
    "$tmp/crystalbench" -json >"$tmp/crystal.json"
else
    "$tmp/crystalbench" -quick -json >"$tmp/crystal.json"
fi

echo "== go micro-benchmarks" >&2
go test -run '^$' -bench . -benchmem -benchtime 0.2s \
    ./internal/trie/ ./internal/sim/ ./internal/bgp/ \
    ./internal/dataplane/ ./internal/p4/ >"$tmp/micro.txt"

go run ./cmd/benchjson -crystal "$tmp/crystal.json" <"$tmp/micro.txt" >"$out"
echo "wrote $out" >&2
