#!/bin/sh
# loadtest.sh — end-to-end crystald load test: boots the daemon on a random
# port, fires LOAD_N concurrent rehearsals at the warm pool via crystalload,
# drains the daemon with SIGTERM, and merges the latency/hit-rate numbers
# into BENCH_<date>.json (gitignored) via cmd/benchjson -loadtest.
#
#   scripts/loadtest.sh
#   LOAD_N=64 LOAD_C=8 LOAD_SPEC=scenarios/pod_upgrade.json scripts/loadtest.sh
set -eu

cd "$(dirname "$0")/.."

spec=${LOAD_SPEC:-scenarios/loadtest_fabric.json}
n=${LOAD_N:-16}
c=${LOAD_C:-4}

out="BENCH_$(date +%Y%m%d).json"
tmp=$(mktemp -d)
daemon=
cleanup() {
    if [ -n "$daemon" ] && kill -0 "$daemon" 2>/dev/null; then
        kill "$daemon" 2>/dev/null || true
        wait "$daemon" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build crystald + crystalload + benchjson" >&2
go build -o "$tmp/crystald" ./cmd/crystald
go build -o "$tmp/crystalload" ./cmd/crystalload
go build -o "$tmp/benchjson" ./cmd/benchjson

echo "== boot crystald" >&2
"$tmp/crystald" -addr 127.0.0.1:0 -portfile "$tmp/port" 2>"$tmp/crystald.log" &
daemon=$!
i=0
while [ ! -s "$tmp/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "crystald did not write its portfile; log:" >&2
        cat "$tmp/crystald.log" >&2
        exit 1
    fi
    if ! kill -0 "$daemon" 2>/dev/null; then
        echo "crystald exited early; log:" >&2
        cat "$tmp/crystald.log" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/port")
echo "crystald listening on $addr" >&2

echo "== crystalload ($n requests, $c concurrent, $spec)" >&2
"$tmp/crystalload" -server "$addr" -spec "$spec" -n "$n" -c "$c" >"$tmp/load.json"

echo "== drain crystald (SIGTERM)" >&2
kill -TERM "$daemon"
if ! wait "$daemon"; then
    echo "crystald did not drain cleanly; log:" >&2
    cat "$tmp/crystald.log" >&2
    exit 1
fi
daemon=

"$tmp/benchjson" -loadtest "$tmp/load.json" </dev/null >"$out"
echo "wrote $out" >&2
