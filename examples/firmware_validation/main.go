// Switch-OS validation pipeline: the paper's §7 Case 2, driven by the
// declarative scenario engine.
//
// Engineers developing the in-house switch OS (CTNR-B) validate every dev
// build by deploying it into an emulated production environment and
// checking that network behaviour does not change. The behavioural checks
// live in one spec (scenarios/firmware_validation.json) — sessions up,
// default route programmed, survives BGP session flaps — and the pipeline
// re-runs it per build by pinning the ctnrb image version. The three dev
// builds carry the bugs the paper reports CrystalNet caught; none are
// visible to unit tests or config verification, all three fail here.
//
//	go run ./examples/firmware_validation
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"crystalnet"
)

type report struct {
	build  string
	checks map[string]bool
}

func main() {
	sp, err := loadSpec("scenarios/firmware_validation.json")
	if err != nil {
		log.Fatal(err)
	}
	builds := []string{"1.0", "dev-default-route", "dev-arp-trap", "dev-flap-crash"}
	var reports []report
	exit := 0
	for _, build := range builds {
		fmt.Printf("--- validating ctnrb %s ---\n", build)
		rep, err := crystalnet.RunScenario(sp.Clone(), crystalnet.ScenarioOptions{
			Images: map[string]crystalnet.ScenarioImage{"ctnrb": {Version: build}},
		})
		if err != nil {
			log.Fatal(err)
		}
		r := report{build: build, checks: map[string]bool{
			"sessions": true, "default": true, "flaps": true,
		}}
		for _, st := range rep.Steps {
			key := checkKey(st.Label)
			if key == "" {
				continue
			}
			if !st.Pass {
				r.checks[key] = false
				fmt.Printf("  FAIL %s: %s\n", st.Label, st.Detail)
			}
		}
		reports = append(reports, r)
	}

	fmt.Println("\n==== validation pipeline results ====")
	for _, r := range reports {
		verdict := "SHIP"
		for _, ok := range r.checks {
			if !ok {
				verdict = "REJECT"
			}
		}
		if verdict == "REJECT" && r.build == "1.0" {
			exit = 1 // the production release must always ship
		}
		fmt.Printf("%-18s sessions:%-5v default-route:%-5v flap-survival:%-5v  => %s\n",
			r.build, r.checks["sessions"], r.checks["default"], r.checks["flaps"], verdict)
	}
	os.Exit(exit)
}

// checkKey maps a spec step label to its pipeline check column.
func checkKey(label string) string {
	switch {
	case label == "sessions":
		return "sessions"
	case label == "default-route":
		return "default"
	case strings.HasPrefix(label, "flap-survival"):
		return "flaps"
	}
	return ""
}

// loadSpec finds the scenario library whether the example runs from the
// repo root or its own directory.
func loadSpec(rel string) (*crystalnet.Scenario, error) {
	sp, err := crystalnet.LoadScenario(rel)
	if err == nil {
		return sp, nil
	}
	return crystalnet.LoadScenario(filepath.Join("..", "..", rel))
}
