// Switch-OS validation pipeline: the paper's §7 Case 2.
//
// Engineers developing the in-house switch OS (CTNR-B) validate every dev
// build by deploying it into an emulated production environment and
// checking that network behaviour does not change. This example runs the
// pipeline over the production release and three dev builds carrying the
// bugs the paper reports CrystalNet caught — failing to program the default
// route, failing to trap ARP to the CPU, and crashing after BGP session
// flaps. None of these are visible to unit tests or config verification;
// all three fail the emulated-production checks here.
//
//	go run ./examples/firmware_validation
package main

import (
	"fmt"
	"log"

	"crystalnet"
)

type report struct {
	build  string
	checks map[string]bool
}

func main() {
	builds := []string{"1.0", "dev-default-route", "dev-arp-trap", "dev-flap-crash"}
	var reports []report
	for _, build := range builds {
		reports = append(reports, validate(build))
	}

	fmt.Println("\n==== validation pipeline results ====")
	for _, r := range reports {
		verdict := "SHIP"
		for _, ok := range r.checks {
			if !ok {
				verdict = "REJECT"
			}
		}
		fmt.Printf("%-18s sessions:%-5v default-route:%-5v flap-survival:%-5v  => %s\n",
			r.build, r.checks["sessions"], r.checks["default"], r.checks["flaps"], verdict)
	}
}

// validate deploys one CTNR-B build onto the ToRs of an emulated fabric and
// runs the behavioural checks.
func validate(version string) report {
	fmt.Printf("--- validating ctnrb %s ---\n", version)
	spec := crystalnet.ClosSpec{
		Name: "pipeline", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
		SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	}
	network := crystalnet.GenerateClos(spec)
	// WAN externals become speakers announcing (among others) the default
	// route the default-route check depends on.
	attachWAN(network)

	img, err := crystalnet.VendorImage("ctnrb", version)
	if err != nil {
		log.Fatal(err)
	}
	o := crystalnet.New(crystalnet.Options{Seed: 21})
	prep, err := o.Prepare(crystalnet.PrepareInput{
		Network: network,
		Images:  map[string]crystalnet.Image{"ctnrb": img},
	})
	if err != nil {
		log.Fatal(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		log.Fatal(err)
	}

	checks := map[string]bool{}

	// Check 1: every ToR's BGP sessions are Established (the ARP-trap bug
	// makes neighbors unable to resolve the ToR at all).
	sessionsOK := true
	for name, st := range em.PullStates() {
		if em.Devices[name].Image.Name == "ctnrb" && st.Established != 2 {
			sessionsOK = false
			fmt.Printf("  FAIL sessions: %s has %d/2 established\n", name, st.Established)
			break
		}
	}
	checks["sessions"] = sessionsOK

	// Check 2: the default route learned from the boundary speakers is
	// actually programmed into the hardware FIB.
	defaultOK := sessionsOK // unreachable control plane implies no default either
	if sessionsOK {
		for _, d := range em.Devices {
			if d.Image.Name != "ctnrb" {
				continue
			}
			if _, ok := d.FIB().Lookup(crystalnet.MustParseIP("198.51.100.1")); !ok {
				defaultOK = false
				fmt.Printf("  FAIL default-route: %s cannot route off-fabric\n", d.Name)
				break
			}
		}
	}
	checks["default"] = defaultOK

	// Check 3: flap a ToR's uplink session a few times; the build must not
	// crash (the production incident: "crashing after several BGP sessions
	// flapped").
	flapsOK := sessionsOK
	if sessionsOK {
		tor := network.MustDevice("tor-p0-0")
		up := tor.Interfaces[0]
		for i := 0; i < 4 && flapsOK; i++ {
			em.SetLink(tor.Name, up.Name, up.Peer.Device.Name, up.Peer.Name, false)
			em.RunUntilConverged(0)
			em.SetLink(tor.Name, up.Name, up.Peer.Device.Name, up.Peer.Name, true)
			em.RunUntilConverged(0)
			if em.Devices[tor.Name].State() != crystalnet.DeviceRunning {
				flapsOK = false
				fmt.Printf("  FAIL flap-survival: %s state %s after %d flaps\n",
					tor.Name, em.Devices[tor.Name].State(), i+1)
			}
		}
	}
	checks["flaps"] = flapsOK

	return report{build: version, checks: checks}
}

// attachWAN adds two external WAN routers above the borders; Prepare turns
// them into boundary speakers.
func attachWAN(n *crystalnet.Network) {
	asn := uint32(64601)
	var borders []*crystalnet.Device
	for _, d := range n.Devices() {
		if d.Layer == crystalnet.LayerBorder {
			borders = append(borders, d)
		}
	}
	for w := 0; w < 2; w++ {
		wd := n.AddDevice(fmt.Sprintf("wan-%d", w), crystalnet.LayerExternal, asn, "external")
		asn++
		for _, b := range borders {
			n.Connect(wd, b)
		}
	}
}
