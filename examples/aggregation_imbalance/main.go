// Aggregation imbalance: the paper's Figure 1 incident, reproduced.
//
// Two aggregators from different vendors summarize P1 (100.64.0.0/24) and
// P2 (100.64.1.0/24) into P3 (100.64.0.0/23). Vendor-A's firmware (R6)
// inherits a contributor's AS path; Vendor-C's (R7) announces a bare path.
// R8 therefore sees {7} vs {6 2 1}, prefers R7, and pins ALL traffic for
// P3 onto one aggregator — the severe imbalance that escaped unit testing
// and config verification but falls out of a CrystalNet emulation.
//
//	go run ./examples/aggregation_imbalance
package main

import (
	"fmt"
	"log"
	"time"

	"crystalnet"
)

func main() {
	// Figure 1's topology: R1 (origin) under two vendor domains feeding R8.
	n := crystalnet.NewNetwork("figure1")
	r1 := n.AddDevice("r1", crystalnet.LayerToR, 1, "stub")
	p1 := crystalnet.MustParsePrefix("100.64.0.0/24")
	p2 := crystalnet.MustParsePrefix("100.64.1.0/24")
	p3 := crystalnet.MustParsePrefix("100.64.0.0/23")
	r1.Originated = append(r1.Originated, p1, p2)
	for i, as := range []uint32{2, 3, 4, 5} {
		n.AddDevice(fmt.Sprintf("r%d", i+2), crystalnet.LayerLeaf, as, "stub")
	}
	n.AddDevice("r6", crystalnet.LayerSpine, 6, "ctnra") // Vendor-A: inherit path
	n.AddDevice("r7", crystalnet.LayerSpine, 7, "vma")   // Vendor-C: bare path
	n.AddDevice("r8", crystalnet.LayerBorder, 8, "stub")
	wire := func(a, b string) { n.Connect(n.MustDevice(a), n.MustDevice(b)) }
	wire("r1", "r2")
	wire("r1", "r3")
	wire("r1", "r4")
	wire("r1", "r5")
	wire("r2", "r6")
	wire("r3", "r6")
	wire("r4", "r7")
	wire("r5", "r7")
	wire("r6", "r8")
	wire("r7", "r8")

	// "stub" is not a registered vendor, so pin an image for it; the real
	// vendor images carry their documented aggregation behaviours.
	stub, err := crystalnet.DefaultImage("ctnrb")
	if err != nil {
		log.Fatal(err)
	}
	stub.Name = "stub"

	o := crystalnet.New(crystalnet.Options{Seed: 7})
	prep, err := o.Prepare(crystalnet.PrepareInput{
		Network: n,
		Images:  map[string]crystalnet.Image{"stub": stub},
	})
	if err != nil {
		log.Fatal(err)
	}
	// The operators' change under test: both aggregators summarize P1/P2.
	agg := crystalnet.Aggregate{Prefix: p3, SummaryOnly: true}
	prep.Configs["r6"].Aggregates = append(prep.Configs["r6"].Aggregates, agg)
	prep.Configs["r7"].Aggregates = append(prep.Configs["r7"].Aggregates, agg)

	em, err := o.Mockup(prep, false)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		log.Fatal(err)
	}

	attrs, ok := em.Devices["r8"].BGP().BestRoute(p3)
	if !ok {
		log.Fatal("R8 never learned the aggregate")
	}
	fmt.Printf("R8 best path for %s: {%s}\n", p3, attrs.Path)

	// Measure where R8's traffic actually lands: 200 distinct flows.
	src := em.Devices["r8"].Config().Loopback.Addr
	for i := 0; i < 200; i++ {
		em.InjectPackets("r8", crystalnet.PacketMeta{
			Src: src, Dst: p3.Addr + crystalnet.IP(i%512),
			Proto: crystalnet.ProtoUDP, SrcPort: uint16(2048 + i), DstPort: 443, TTL: 32,
		}, 1, time.Millisecond)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		log.Fatal(err)
	}
	via := map[string]int{}
	for _, p := range crystalnet.ComputePaths(em.PullPackets()) {
		for _, hop := range p.Hops {
			if hop.Device == "r6" || hop.Device == "r7" {
				via[hop.Device]++
			}
		}
	}
	fmt.Printf("flows via R6: %d, via R7: %d\n", via["r6"], via["r7"])
	if via["r7"] > 0 && via["r6"] == 0 {
		fmt.Println("=> severe imbalance reproduced: every flow rides R7, exactly the production incident")
	}
}
