// Regional backbone migration: the paper's §7 Case 1.
//
// A region's datacenters exchange traffic through legacy WAN cores; a new
// regional backbone must take that traffic over with no disruption. The
// rehearsal emulates the spine and border layers of two DCs, the new
// backbone routers and the legacy WAN cores (Algorithm 1 pulls them in
// automatically from the spines); everything below the spines is stood in
// by static speakers.
//
// The run then follows the real operation:
//
//  1. Baseline: inter-DC flows ECMP across backbone AND WAN.
//
//  2. Migration: raise LOCAL_PREF on backbone sessions at every border —
//     all inter-DC traffic moves onto the backbone.
//
//  3. Decommission rehearsal with a BUGGY tool that runs a device-wide
//     "shutdown" instead of per-session shutdown — caught in emulation
//     (the paper: >50 tool bugs found this way).
//
//  4. The fixed tool shuts down only the WAN sessions; traffic unaffected.
//
//     go run ./examples/backbone_migration
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"crystalnet"
)

func main() {
	region := crystalnet.GenerateRegion(crystalnet.RegionSpec{
		Name: "region-east", DCs: 2,
		DCSpec: crystalnet.ClosSpec{
			Name: "dc", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
			SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
			PrefixesPerToR: 1,
		},
		BackboneRouters: 2, WANCores: 2,
	})

	// Operators name the spines; Algorithm 1 grows the set upward through
	// the borders to the backbone and WAN cores.
	var must []string
	for _, d := range region.Devices() {
		if d.Layer == crystalnet.LayerSpine {
			must = append(must, d.Name)
		}
	}
	o := crystalnet.New(crystalnet.Options{Seed: 12})
	prep, err := o.Prepare(crystalnet.PrepareInput{Network: region, MustEmulate: must})
	if err != nil {
		log.Fatal(err)
	}
	if prep.SafetyErr != nil {
		log.Fatalf("boundary unsafe: %v", prep.SafetyErr)
	}
	s := prep.Plan.Scale()
	fmt.Printf("emulating %d of %d devices (%.0f%%), %d speakers — boundary safe\n",
		s.TotalEmulated, region.NumDevices(), s.Proportion*100, s.Speakers)

	em, err := o.Mockup(prep, false)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		log.Fatal(err)
	}

	dst := region.MustDevice("dc1-tor-p0-0").Originated[0]
	measure := func(label string) (viaBackbone, viaWAN int) {
		for i := 0; i < 60; i++ {
			em.InjectPackets("dc0-border-g0-0", crystalnet.PacketMeta{
				Src:   em.Devices["dc0-border-g0-0"].Config().Loopback.Addr,
				Dst:   dst.Addr + crystalnet.IP(i),
				Proto: crystalnet.ProtoUDP, SrcPort: uint16(3000 + i), DstPort: 443, TTL: 32,
			}, 1, time.Millisecond)
		}
		em.RunUntilConverged(0)
		for _, p := range crystalnet.ComputePaths(em.PullPackets()) {
			for _, h := range p.Hops {
				if strings.HasPrefix(h.Device, "rbb-") {
					viaBackbone++
				}
				if strings.HasPrefix(h.Device, "wan-core-") {
					viaWAN++
				}
			}
		}
		fmt.Printf("  [%s] inter-DC flows: %d via backbone, %d via legacy WAN\n", label, viaBackbone, viaWAN)
		return
	}

	fmt.Println("\nStep 1: baseline")
	_, wanBefore := measure("baseline")
	if wanBefore == 0 {
		fmt.Println("  note: ECMP hashing sent no sampled flow via WAN this run")
	}

	fmt.Println("\nStep 2: migrate — prefer the regional backbone at every border")
	// NOTE a first draft of this route-map set LOCAL_PREF 200 on *every*
	// route learned from the backbone. The emulator exposed that as a
	// route oscillation: borders preferred the backbone's default route,
	// stopped feeding it, the backbone withdrew it, preference flipped
	// back — forever. The shipped policy scopes the preference to the
	// server space, as the real migration did.
	serverSpace := crystalnet.MustParsePrefix("100.64.0.0/10")
	for name, dev := range em.Devices {
		if !strings.Contains(name, "border") || dev.State() != crystalnet.DeviceRunning {
			continue
		}
		cfg := dev.Config().Clone()
		cfg.RouteMaps["PREFER-RBB"] = &crystalnet.Policy{
			Name: "PREFER-RBB",
			Rules: []crystalnet.Rule{{
				Name: "10", Action: crystalnet.Permit,
				Match:        crystalnet.RuleMatch{Prefix: &serverSpace, GE: 24},
				SetLocalPref: u32(200),
			}},
			DefaultAction: crystalnet.Permit,
		}
		for i := range cfg.Neighbors {
			if cfg.Neighbors[i].RemoteAS == 64900 { // backbone AS
				cfg.Neighbors[i].ImportPolicy = "PREFER-RBB"
			}
		}
		if err := em.ReloadDevice(name, cfg, nil); err != nil {
			log.Fatal(err)
		}
	}
	em.RunUntilConverged(0)
	bbAfter, wanAfter := measure("migrated")
	if wanAfter != 0 || bbAfter == 0 {
		log.Fatal("migration failed: traffic still on the WAN")
	}
	fmt.Println("  all inter-DC traffic on the backbone — migration step validated")

	fmt.Println("\nStep 3: decommission WAN peerings with the BUGGY tool")
	border := "dc0-border-g0-0"
	sess, err := em.Login(border)
	if err != nil {
		log.Fatal(err)
	}
	// The tool's unhandled corner case: it issues a device-wide shutdown.
	sess.Exec("shutdown")
	em.RunUntilConverged(0)
	if em.Devices[border].State() != crystalnet.DeviceRunning {
		fmt.Printf("  CAUGHT: tool halted the whole border (%s) instead of one session\n", border)
	}
	fmt.Println("  rolling the device back and fixing the tool...")
	if err := em.ReloadDevice(border, nil, nil); err != nil {
		log.Fatal(err)
	}
	em.RunUntilConverged(0)

	fmt.Println("\nStep 4: decommission with the FIXED tool (per-session shutdown)")
	sess, err = em.Login(border)
	if err != nil {
		log.Fatal(err)
	}
	cfg := em.Devices[border].Config()
	for _, nb := range cfg.Neighbors {
		if nb.RemoteAS >= 64950 && nb.RemoteAS < 64960 { // WAN core ASes
			if _, err := sess.Exec("neighbor " + nb.IP.String() + " shutdown"); err != nil {
				log.Fatal(err)
			}
		}
	}
	em.RunUntilConverged(0)
	if em.Devices[border].State() != crystalnet.DeviceRunning {
		log.Fatal("fixed tool still killed the device")
	}
	bbFinal, wanFinal := measure("decommissioned")
	if bbFinal == 0 || wanFinal != 0 {
		log.Fatal("traffic broken after decommission")
	}
	fmt.Println("  border healthy, WAN sessions down, traffic on backbone — plan ready for production")
}

func u32(v uint32) *uint32 { return &v }
