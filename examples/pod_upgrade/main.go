// Pod upgrade rehearsal: the paper's most common validation case (§8.4
// Case 1) run through the Figure 3 workflow.
//
// Operators need to change ACLs on one pod of a large datacenter. Instead
// of emulating all of it, Algorithm 1 grows the pod to a safe boundary
// (pod + spines + borders, ~a tenth of this fabric), static speakers stand
// in for the rest, and the change is validated step by step:
//
//  1. Mockup the safe boundary and converge.
//
//  2. Apply the intended ACL via Reload; verify legitimate traffic still
//     flows and guarded traffic is dropped.
//
//  3. Apply the *fat-fingered* variant an operator could have typed
//     ("/2" for "/20"); watch the emulator expose the black hole.
//
//  4. Roll back with Reload(original) — the loop of Figure 3.
//
//     go run ./examples/pod_upgrade
package main

import (
	"fmt"
	"log"
	"time"

	"crystalnet"
)

func main() {
	spec := crystalnet.ClosSpec{
		Name: "dc", Pods: 8, ToRsPerPod: 4, LeavesPerPod: 4,
		SpineGroups: 2, SpinesPerPlane: 4, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	}
	network := crystalnet.GenerateClos(spec)

	// The operators' input: just the pod they are changing.
	var must []string
	for _, d := range network.DevicesInPod(0) {
		must = append(must, d.Name)
	}
	o := crystalnet.New(crystalnet.Options{Seed: 3})
	prep, err := o.Prepare(crystalnet.PrepareInput{Network: network, MustEmulate: must})
	if err != nil {
		log.Fatal(err)
	}
	scale := prep.Plan.Scale()
	fmt.Printf("Algorithm 1 boundary: %d devices emulated of %d (%.1f%%), %d speakers, %d VMs\n",
		scale.TotalEmulated, network.NumDevices(), scale.Proportion*100, scale.Speakers, scale.VMs)
	if prep.SafetyErr != nil {
		log.Fatalf("boundary unsafe: %v", prep.SafetyErr)
	}
	fmt.Println("boundary certified safe (Prop 5.2/5.3)")

	em, err := o.Mockup(prep, false)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		log.Fatal(err)
	}

	leaf := "leaf-p0-0"
	original := em.Devices[leaf].Config().Clone()
	serverNet := network.MustDevice("tor-p0-0").Originated[0]

	probe := func(label string) bool {
		// A probe from the border toward pod 0's servers, through the leaf.
		em.InjectPackets("border-g0-0", crystalnet.PacketMeta{
			Src: em.Devices["border-g0-0"].Config().Loopback.Addr, Dst: serverNet.Addr + 9,
			Proto: crystalnet.ProtoUDP, SrcPort: 5000, DstPort: 8080, TTL: 32,
		}, 1, time.Millisecond)
		em.RunUntilConverged(0)
		paths := crystalnet.ComputePaths(em.PullPackets())
		ok := len(paths) == 1 && paths[0].Delivered
		fmt.Printf("  [%s] probe to %v: %s\n", label, serverNet, paths[0])
		return ok
	}

	fmt.Println("\nStep 0: baseline")
	if !probe("baseline") {
		log.Fatal("baseline broken")
	}

	// Step 1: the intended change — block an external scanner range from
	// the pod's servers, permit everything else.
	fmt.Println("\nStep 1: intended ACL (deny 203.0.113.0/24 -> servers)")
	good := original.Clone()
	scanner := crystalnet.MustParsePrefix("203.0.113.0/24")
	good.ACLs["POD-GUARD"] = &crystalnet.ACL{
		Name:          "POD-GUARD",
		Rules:         []crystalnet.ACLRule{{Action: crystalnet.ACLDeny, Src: &scanner}},
		DefaultAction: crystalnet.ACLPermit,
	}
	for _, ic := range good.Interfaces {
		if ic.Name != "lo" {
			good.Bindings = append(good.Bindings, crystalnet.ACLBinding{
				ACLName: "POD-GUARD", Interface: ic.Name, Direction: crystalnet.In,
			})
		}
	}
	if err := em.ReloadDevice(leaf, good, nil); err != nil {
		log.Fatal(err)
	}
	em.RunUntilConverged(0)
	if !probe("good ACL") {
		log.Fatal("intended change broke traffic — would NOT ship")
	}
	fmt.Println("  legitimate traffic unaffected: change validated")

	// Step 2: what a typo would have done — "/2" instead of "/20"-ish
	// scoping, denying a quarter of the address space including the fabric.
	fmt.Println("\nStep 2: fat-fingered ACL (deny 0.0.0.0/2 ingress — the §2 human-error class)")
	bad := original.Clone()
	typo := crystalnet.MustParsePrefix("0.0.0.0/2")
	bad.ACLs["POD-GUARD"] = &crystalnet.ACL{
		Name:          "POD-GUARD",
		Rules:         []crystalnet.ACLRule{{Action: crystalnet.ACLDeny, Src: &typo}},
		DefaultAction: crystalnet.ACLPermit,
	}
	for _, ic := range bad.Interfaces {
		if ic.Name != "lo" {
			bad.Bindings = append(bad.Bindings, crystalnet.ACLBinding{
				ACLName: "POD-GUARD", Interface: ic.Name, Direction: crystalnet.In,
			})
		}
	}
	if err := em.ReloadDevice(leaf, bad, nil); err != nil {
		log.Fatal(err)
	}
	em.RunUntilConverged(0)
	if probe("typo ACL") {
		fmt.Println("  probe still delivered (ECMP routed around the broken leaf) — check the leaf directly")
	} else {
		fmt.Println("  BLACK HOLE caught in emulation — this change never reaches production")
	}

	// Step 3: roll back (the Figure 3 "fix bugs" edge).
	fmt.Println("\nStep 3: rollback to the original config")
	if err := em.ReloadDevice(leaf, original, nil); err != nil {
		log.Fatal(err)
	}
	em.RunUntilConverged(0)
	if !probe("rollback") {
		log.Fatal("rollback failed")
	}
	fmt.Println("  fabric restored; validated plan ready for production")
}
