// Pod upgrade rehearsal: the paper's most common validation case (§8.4
// Case 1) run through the Figure 3 workflow — now expressed as a
// declarative scenario spec (scenarios/pod_upgrade.json) executed by the
// scenario engine.
//
// The spec mocks up a safe boundary around pod 0 (Algorithm 1 grows the
// pod to pod + spines + borders), applies the intended pod-wide ACL,
// verifies traffic still flows, applies the *fat-fingered* variant an
// operator could have typed ("/2" for "/24"), watches the emulator expose
// the black hole, and rolls back — asserting the final forwarding state is
// byte-identical to the pre-change baseline.
//
//	go run ./examples/pod_upgrade
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"crystalnet"
)

func main() {
	sp, err := loadSpec("scenarios/pod_upgrade.json")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rehearsing %q: %s\n\n", sp.Name, sp.Description)

	rep, err := crystalnet.RunScenario(sp, crystalnet.ScenarioOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range rep.Steps {
		if st.Label == "" && st.Pass {
			continue // unlabeled plumbing steps stay quiet unless they fail
		}
		verdict := "ok"
		if !st.Pass {
			verdict = "FAIL"
		}
		name := st.Label
		if name == "" {
			name = st.Op
		}
		fmt.Printf("  [%-4s] %-70s %s\n", verdict, name, st.VirtualLatency)
	}
	fmt.Printf("\n%s\n", rep.Summary())
	if !rep.Passed {
		fmt.Println("change would NOT ship")
		os.Exit(1)
	}
	fmt.Println("validated plan ready for production")
}

// loadSpec finds the scenario library whether the example runs from the
// repo root or its own directory.
func loadSpec(rel string) (*crystalnet.Scenario, error) {
	sp, err := crystalnet.LoadScenario(rel)
	if err == nil {
		return sp, nil
	}
	return crystalnet.LoadScenario(filepath.Join("..", "..", rel))
}
