// Quickstart: emulate a small BGP Clos fabric end to end.
//
// This is the minimal CrystalNet workflow from the paper's Figure 3:
// Prepare a production snapshot, Mock it up on (simulated) cloud VMs, wait
// for route convergence, then validate — pull FIBs, trace a probe packet
// across the fabric, log into a device CLI — and finally Clear and Destroy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"crystalnet"
)

func main() {
	// A 2-pod Clos fabric: 4 ToRs, 4 leaves, 4 spines, 2 borders.
	spec := crystalnet.ClosSpec{
		Name: "quickstart", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
		SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	}
	network := crystalnet.GenerateClos(spec)

	o := crystalnet.New(crystalnet.Options{Seed: 1})
	prep, err := o.Prepare(crystalnet.PrepareInput{Network: network})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Prepared: %d devices emulated on %d VMs\n",
		len(prep.Plan.Internal)+len(prep.Plan.Boundary), len(prep.VMs()))

	em, err := o.Mockup(prep, false)
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := em.RunUntilConverged(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mockup done: network-ready %s, route-ready %s, total %s (virtual time), burn $%.2f/hour\n",
		metrics.NetworkReady.Round(time.Second), metrics.RouteReady.Round(time.Second),
		metrics.Mockup.Round(time.Second), o.Cloud.HourlyCostUSD())

	// Monitor: pull one device's forwarding table.
	fibs := em.PullFIBs()
	fmt.Printf("\ntor-p0-0 FIB (%d entries):\n%s\n", fibs["tor-p0-0"].Len(), fibs["tor-p0-0"])

	// Control: trace a probe from pod 0 to a server prefix in pod 1.
	src := em.Devices["tor-p0-0"]
	dst := network.MustDevice("tor-p1-1").Originated[0]
	if _, err := em.InjectPackets("tor-p0-0", crystalnet.PacketMeta{
		Src: src.Config().Loopback.Addr, Dst: dst.Addr + 10,
		Proto: crystalnet.ProtoUDP, SrcPort: 40000, DstPort: 80, TTL: 32,
	}, 1, time.Millisecond); err != nil {
		log.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		log.Fatal(err)
	}
	for _, p := range crystalnet.ComputePaths(em.PullPackets()) {
		fmt.Printf("probe path: %s (delivered: %v)\n", p, p.Delivered)
	}

	// Management plane: the same CLI workflow operators use in production.
	session, err := em.Login("border-g0-0")
	if err != nil {
		log.Fatal(err)
	}
	out, err := session.Exec("show bgp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nborder-g0-0> show bgp\n%s", out)

	em.Clear(nil)
	o.Eng.Run(0)
	o.Destroy(prep)
	fmt.Printf("\nCleared and destroyed. Total simulated cloud spend: $%.2f\n", o.Cloud.CostUSD())
}
