// benchjson merges `go test -bench` text (stdin), `crystalbench -json`
// output (-crystal), `crystalload` output (-loadtest), and the §10 scale
// benchmark (-scale, -memstats) into one machine-readable BENCH_<date>.json
// document, so benchmark history can be diffed across commits without
// scraping the formats separately.
// scripts/bench.sh and scripts/loadtest.sh are the intended drivers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// microBench is one parsed `go test -bench` result line.
type microBench struct {
	Name        string  `json:"name"`
	Package     string  `json:"package,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type document struct {
	Date         string          `json:"date"`
	GoVersion    string          `json:"go"`
	CPUs         int             `json:"cpus"`
	CrystalBench json.RawMessage `json:"crystalbench,omitempty"`
	// LoadTest embeds crystalload's output: crystald latency quantiles and
	// warm-pool hit rate under concurrent rehearsal requests.
	LoadTest json.RawMessage `json:"loadtest,omitempty"`
	// MemStats embeds the runtime.MemStats summary crystalbench -memstats
	// writes (heap_alloc, total_alloc, heap_sys, num_gc), so heap history
	// rides the same document as the latency numbers.
	MemStats json.RawMessage `json:"memstats,omitempty"`
	// Scale embeds crystalbench -scale -json output: the DESIGN.md §10
	// whole-fabric convergence results (wall-clock, peak/live heap, peak
	// RSS, intern hit rate) for the interned pass and its non-interned
	// baseline.
	Scale json.RawMessage `json:"scale,omitempty"`
	// Traffic embeds crystalbench -traffic -json output: the traffic-plane
	// benchmark (docs/TRAFFIC.md) — flow matrix size, per-settle wall-clock
	// and the flows-settled/s rate.
	Traffic    json.RawMessage `json:"traffic,omitempty"`
	Benchmarks []microBench    `json:"benchmarks"`
}

// embedJSON validates and returns a file's raw JSON for embedding.
func embedJSON(path string) json.RawMessage {
	raw, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	if !json.Valid(raw) {
		log.Fatalf("%s: not valid JSON", path)
	}
	return json.RawMessage(raw)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	crystal := flag.String("crystal", "", "path to crystalbench -json output to embed")
	loadtest := flag.String("loadtest", "", "path to crystalload output to embed")
	memstats := flag.String("memstats", "", "path to crystalbench -memstats output to embed")
	scale := flag.String("scale", "", "path to crystalbench -scale -json output to embed")
	trafficPath := flag.String("traffic", "", "path to crystalbench -traffic -json output to embed")
	flag.Parse()

	doc := document{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
	}
	if *crystal != "" {
		doc.CrystalBench = embedJSON(*crystal)
	}
	if *loadtest != "" {
		doc.LoadTest = embedJSON(*loadtest)
	}
	if *memstats != "" {
		doc.MemStats = embedJSON(*memstats)
	}
	if *scale != "" {
		doc.Scale = embedJSON(*scale)
	}
	if *trafficPath != "" {
		doc.Traffic = embedJSON(*trafficPath)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

// parseBenchLine decodes one result line, e.g.
//
//	BenchmarkLookup-8   1000000   1234 ns/op   56 B/op   2 allocs/op
func parseBenchLine(line string) (microBench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return microBench{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return microBench{}, false
	}
	b := microBench{Name: f[0], Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		val := f[i]
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			b.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			continue
		}
		if err != nil {
			return microBench{}, false
		}
	}
	if b.NsPerOp == 0 && b.Iterations == 0 {
		return microBench{}, false
	}
	return b, true
}
