// Command doccheck is the repository's documentation gate: it walks every
// package under internal/ (plus the facade and cmd/) and fails if any
// package lacks a package-level doc comment, or if an internal package's
// doc comment never points the reader at the design documentation
// (DESIGN.md or docs/). It also cross-checks docs/API.md against the
// daemon's route table (internal/serve.Routes) so an endpoint cannot
// ship undocumented. scripts/check.sh runs it, so an undocumented
// package fails verification the same way a broken test does.
//
// Usage:
//
//	doccheck [root]
//
// root defaults to the current directory and must be the repository root
// (the directory holding go.mod).
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"crystalnet/internal/serve"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s is not a module root: %v\n", root, err)
		os.Exit(2)
	}

	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}

	var problems []string
	for _, dir := range dirs {
		doc, err := packageDoc(dir)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		rel, _ := filepath.Rel(root, dir)
		if doc == "" {
			problems = append(problems, fmt.Sprintf("%s: no package doc comment", rel))
			continue
		}
		// Internal packages carry the architecture: their doc comments must
		// route the reader to the design docs.
		if strings.HasPrefix(rel, "internal"+string(filepath.Separator)) &&
			!strings.Contains(doc, "DESIGN.md") && !strings.Contains(doc, "docs/") {
			problems = append(problems, fmt.Sprintf("%s: package doc does not reference DESIGN.md or docs/", rel))
		}
	}

	problems = append(problems, apiDocProblems(root)...)

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doccheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d packages documented, %d API routes covered\n",
		len(dirs), len(serve.Routes))
}

// apiDocProblems verifies that docs/API.md exists and mentions every
// route crystald serves (internal/serve.Routes is the source of truth).
func apiDocProblems(root string) []string {
	path := filepath.Join(root, "docs", "API.md")
	raw, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("docs/API.md: %v", err)}
	}
	var problems []string
	for _, route := range serve.Routes {
		if !strings.Contains(string(raw), route) {
			problems = append(problems,
				fmt.Sprintf("docs/API.md: route %s is served but undocumented", route))
		}
	}
	return problems
}

// packageDirs lists every directory under root that contains non-test Go
// files, skipping vendored and hidden trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// packageDoc parses a directory's Go files (comments only) and returns the
// package doc comment, preferring the file named after common doc-comment
// conventions — in practice exactly one file per package carries it.
func packageDoc(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				return f.Doc.Text(), nil
			}
		}
	}
	return "", nil
}
