// Command doccheck is the repository's documentation gate: it walks every
// package under internal/ (plus the facade and cmd/) and fails if any
// package lacks a package-level doc comment, or if an internal package's
// doc comment never links a DESIGN.md section. Section references must
// resolve: "DESIGN.md §10" fails if DESIGN.md has no "## 10." heading, and
// the quoted form (DESIGN.md §"Rehearsal service") must match a heading
// title, so renumbering DESIGN.md breaks the gate instead of silently
// stranding the pointers. Any docs/<FILE>.md a package doc mentions must
// exist on disk.
//
// It also cross-checks the prose docs against the code's registries:
// docs/API.md must mention every route the daemon serves
// (internal/serve.Routes), and docs/OBSERVABILITY.md must list every
// metric name registered anywhere under internal/ (every string literal
// passed to a Counter/Gauge/Histogram constructor), so a new metric cannot
// ship undocumented. scripts/check.sh runs it, so documentation drift
// fails verification the same way a broken test does.
//
// Usage:
//
//	doccheck [root]
//
// root defaults to the current directory and must be the repository root
// (the directory holding go.mod).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"crystalnet/internal/serve"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s is not a module root: %v\n", root, err)
		os.Exit(2)
	}

	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}

	sections, err := designSections(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}

	var problems []string
	for _, dir := range dirs {
		doc, err := packageDoc(dir)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		rel, _ := filepath.Rel(root, dir)
		if doc == "" {
			problems = append(problems, fmt.Sprintf("%s: no package doc comment", rel))
			continue
		}
		// Internal packages carry the architecture: their doc comments must
		// route the reader to a real DESIGN.md section, and any docs/ file
		// they mention must exist.
		if strings.HasPrefix(rel, "internal"+string(filepath.Separator)) {
			problems = append(problems, sectionProblems(rel, doc, sections)...)
			problems = append(problems, docsFileProblems(root, rel, doc)...)
		}
	}

	problems = append(problems, apiDocProblems(root)...)
	problems = append(problems, metricDocProblems(root)...)

	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doccheck:", p)
		}
		os.Exit(1)
	}
	metrics, _ := registeredMetrics(filepath.Join(root, "internal"))
	fmt.Printf("doccheck: %d packages documented, %d API routes covered, %d metrics listed\n",
		len(dirs), len(serve.Routes), len(metrics))
}

// sectionRef matches the two DESIGN.md section-reference forms package
// docs use: "DESIGN.md §10" and `DESIGN.md §"Rehearsal service"`.
var sectionRef = regexp.MustCompile(`DESIGN\.md §(?:(\d+)|"([^"]+)")`)

// designSections parses DESIGN.md's "## N. Title" headings into a
// number → title map.
func designSections(root string) (map[string]string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		return nil, err
	}
	heading := regexp.MustCompile(`(?m)^## (\d+)\.\s+(.+)$`)
	sections := map[string]string{}
	for _, m := range heading.FindAllStringSubmatch(string(raw), -1) {
		sections[m[1]] = strings.TrimSpace(m[2])
	}
	return sections, nil
}

// sectionProblems verifies a package doc references at least one DESIGN.md
// section and that every reference resolves against the current headings.
func sectionProblems(rel, doc string, sections map[string]string) []string {
	var problems []string
	refs := sectionRef.FindAllStringSubmatch(doc, -1)
	if len(refs) == 0 {
		return []string{fmt.Sprintf("%s: package doc does not link a DESIGN.md section (want e.g. `DESIGN.md §10`)", rel)}
	}
	for _, ref := range refs {
		if num := ref[1]; num != "" {
			if _, ok := sections[num]; !ok {
				problems = append(problems,
					fmt.Sprintf("%s: package doc links DESIGN.md §%s, which has no `## %s.` heading", rel, num, num))
			}
			continue
		}
		title, found := ref[2], false
		for _, t := range sections {
			if strings.Contains(t, title) {
				found = true
				break
			}
		}
		if !found {
			problems = append(problems,
				fmt.Sprintf("%s: package doc links DESIGN.md §%q, which matches no heading title", rel, title))
		}
	}
	return problems
}

// docsFileRef matches docs/<FILE>.md mentions in package docs.
var docsFileRef = regexp.MustCompile(`docs/([A-Za-z0-9_.-]+\.md)`)

// docsFileProblems verifies every docs/ file a package doc mentions exists.
func docsFileProblems(root, rel, doc string) []string {
	var problems []string
	seen := map[string]bool{}
	for _, m := range docsFileRef.FindAllStringSubmatch(doc, -1) {
		if seen[m[1]] {
			continue
		}
		seen[m[1]] = true
		if _, err := os.Stat(filepath.Join(root, "docs", m[1])); err != nil {
			problems = append(problems,
				fmt.Sprintf("%s: package doc references docs/%s, which does not exist", rel, m[1]))
		}
	}
	return problems
}

// apiDocProblems verifies that docs/API.md exists and mentions every
// route crystald serves (internal/serve.Routes is the source of truth).
func apiDocProblems(root string) []string {
	path := filepath.Join(root, "docs", "API.md")
	raw, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("docs/API.md: %v", err)}
	}
	var problems []string
	for _, route := range serve.Routes {
		if !strings.Contains(string(raw), route) {
			problems = append(problems,
				fmt.Sprintf("docs/API.md: route %s is served but undocumented", route))
		}
	}
	return problems
}

// metricDocProblems scans every non-test file under internal/ for metric
// registrations — string literals passed as the first argument to a
// Counter/Gauge/Histogram constructor (or the lowercase vendoring helpers
// some packages wrap them in) — and requires docs/OBSERVABILITY.md to
// mention each name.
func metricDocProblems(root string) []string {
	names, err := registeredMetrics(filepath.Join(root, "internal"))
	if err != nil {
		return []string{fmt.Sprintf("metric scan: %v", err)}
	}
	raw, err := os.ReadFile(filepath.Join(root, "docs", "OBSERVABILITY.md"))
	if err != nil {
		return []string{fmt.Sprintf("docs/OBSERVABILITY.md: %v", err)}
	}
	var problems []string
	for _, name := range names {
		if !strings.Contains(string(raw), "`"+name+"`") {
			problems = append(problems,
				fmt.Sprintf("docs/OBSERVABILITY.md: metric %s is registered in code but not listed", name))
		}
	}
	return problems
}

// registeredMetrics returns the sorted, deduplicated metric names
// registered under dir. internal/obs itself is skipped: it defines the
// constructors, and its docs describe the registry, not specific metrics.
func registeredMetrics(dir string) ([]string, error) {
	seen := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "obs" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			var fn string
			switch e := call.Fun.(type) {
			case *ast.SelectorExpr:
				fn = e.Sel.Name
			case *ast.Ident:
				fn = e.Name
			default:
				return true
			}
			switch fn {
			case "Counter", "Gauge", "Histogram", "counter", "gauge", "histogram":
			default:
				return true
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				seen[strings.Trim(lit.Value, `"`)] = true
			}
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// packageDirs lists every directory under root that contains non-test Go
// files, skipping vendored and hidden trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// packageDoc parses a directory's Go files (comments only) and returns the
// package doc comment, preferring the file named after common doc-comment
// conventions — in practice exactly one file per package carries it.
func packageDoc(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				return f.Doc.Text(), nil
			}
		}
	}
	return "", nil
}
