// Command crystald is the rehearsal-as-a-service daemon: it keeps a warm
// pool of converged, checkpointed base fabrics and serves concurrent
// rehearsal and chaos requests over HTTP by forking a pooled checkpoint
// per request. A served report is byte-identical to what the batch
// `crystalctl run-scenario` / `crystalctl chaos` commands print for the
// same spec — the warm pool only removes convergence latency, never
// changes results.
//
// Usage:
//
//	crystald [flags]
//
// Endpoints (docs/API.md):
//
//	POST /v1/rehearse        run one scenario spec, return its JSON report
//	POST /v1/chaos           run a chaos campaign against a base spec
//	GET  /v1/status          sessions, quotas and warm-pool state
//	POST /v1/pool/invalidate retire warm baselines (re-warm in background)
//	GET  /healthz            liveness (503 while draining)
//	GET  /metrics            Prometheus text metrics
//
// SIGTERM/SIGINT drains gracefully: new work is refused with 503 while
// in-flight sessions finish (bounded by -draintimeout), then the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"crystalnet"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("crystald: ")
	addr := flag.String("addr", "127.0.0.1:9310", "listen address (use :0 for an ephemeral port)")
	pool := flag.Int("pool", 4, "warm checkpoint pool capacity")
	maxInFlight := flag.Int("maxinflight", 16, "max concurrent sessions across all tenants (-1 = unlimited)")
	tenantInFlight := flag.Int("tenantinflight", 4, "max concurrent sessions per tenant (-1 = unlimited)")
	maxEvents := flag.Uint64("maxevents", 0, "cap each convergence drive (0 = default)")
	warm := flag.String("warm", "", "pre-converge a baseline from this spec `file` at boot")
	portFile := flag.String("portfile", "", "write the bound address to `file` once listening")
	noRewarm := flag.Bool("norewarm", false, "do not re-converge invalidated pool entries in the background")
	drainTimeout := flag.Duration("draintimeout", 2*time.Minute, "max time to wait for in-flight sessions on shutdown")
	flag.Parse()

	srv := crystalnet.NewRehearsalServer(crystalnet.ServeConfig{
		PoolSize:       *pool,
		MaxInFlight:    *maxInFlight,
		TenantInFlight: *tenantInFlight,
		MaxEvents:      *maxEvents,
		NoRewarm:       *noRewarm,
	})

	if *warm != "" {
		sp, err := crystalnet.LoadScenario(*warm)
		if err != nil {
			log.Fatalf("-warm: %v", err)
		}
		log.Printf("warming pool from %s (%s)...", *warm, sp.Name)
		start := time.Now()
		if err := srv.Warm(sp); err != nil {
			log.Fatalf("-warm: %v", err)
		}
		log.Printf("warm baseline ready in %s", time.Since(start).Round(time.Millisecond))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound+"\n"), 0o644); err != nil {
			log.Fatalf("-portfile: %v", err)
		}
	}
	log.Printf("listening on %s (pool %d, maxinflight %d, tenantinflight %d)",
		bound, *pool, *maxInFlight, *tenantInFlight)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (refusing new work, finishing in-flight sessions)...", sig)
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v (forcing exit)", err)
		httpSrv.Close()
		os.Exit(1)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "crystald: drained cleanly")
}
