// Command crystalctl is the operator CLI for CrystalNet: it prepares and
// mocks up an emulation of one of the evaluation fabrics (or a safe
// boundary within one) and runs a validation action against it — the
// command-line face of the paper's Table 2 API plus the declarative
// scenario engine.
//
// Usage:
//
//	crystalctl [flags] <command> [args]
//
// Commands:
//
//	plan                      compute and print the safe boundary (no emulation)
//	mockup                    mock up, converge, print metrics and a state summary
//	fibs <device>             mock up and dump a device's forwarding table
//	exec <device> <cmd>       mock up and run a CLI command over the mgmt plane
//	trace <device> <ip>       mock up and trace a probe packet from a device
//	run-scenario <file.json>  execute a rehearsal spec, print its JSON report
//	chaos [file.json]         run a chaos campaign from a base spec (default: sdc)
//
// run-scenario and chaos build their fabric from the spec file; the
// topology flags (-dc, -ldcscale, -must, -vms) apply to the other commands.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"crystalnet"
	"crystalnet/internal/scenario"
	"crystalnet/internal/topo"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `usage: crystalctl [flags] <command> [args]

Commands:
  plan                      compute and print the safe boundary (no emulation)
  mockup                    mock up, converge, print metrics and a state summary
  fibs <device>             mock up and dump a device's forwarding table
  exec <device> <command>   mock up and run a CLI command over the mgmt plane
  trace <device> <ip>       mock up and trace a probe packet from a device
  run-scenario <file.json>  execute a rehearsal spec, print its JSON report
                            (exits 1 if the scenario fails)
  chaos [file.json]         expand a base spec into -n seeded fault sequences
                            and run them on -workers cores (default base: the
                            sdc fabric with the no-blackhole invariant)

run-scenario and chaos take their fabric from the spec file; -dc, -ldcscale,
-must and -vms apply to the other commands.

Flags:
`)
	flag.PrintDefaults()
}

func main() {
	log.SetFlags(0)
	dc := flag.String("dc", "sdc", "fabric: sdc, mdc or ldc")
	ldcScale := flag.Int("ldcscale", 8, "L-DC downscale divisor")
	must := flag.String("must", "", "comma-separated must-emulate devices (Algorithm 1 grows the boundary)")
	vms := flag.Int("vms", 0, "VM budget override")
	seed := flag.Int64("seed", 1, "simulation seed (run-scenario: overrides the spec's seed when set)")
	n := flag.Int("n", 20, "chaos: number of fault sequences")
	workers := flag.Int("workers", 0, "chaos: worker pool size (0 = all cores, 1 = serial)")
	faults := flag.Int("faults", 6, "chaos: fault events per sequence")
	reuse := flag.Bool("reuse", false, "chaos: converge the base fabric once and fork it per run")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the command to `file`")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	switch cmd {
	case "run-scenario":
		need(flag.NArg() >= 2, "run-scenario <file.json>")
		sp, err := crystalnet.LoadScenario(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		opts := crystalnet.ScenarioOptions{}
		if seedSet {
			opts.SeedOverride = seed
		}
		rep, err := crystalnet.RunScenario(sp, opts)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(rep.JSON())
		fmt.Fprintln(os.Stderr, rep.Summary())
		if !rep.Passed {
			os.Exit(1)
		}
		return
	case "chaos":
		base := defaultChaosBase()
		if flag.NArg() >= 2 {
			sp, err := crystalnet.LoadScenario(flag.Arg(1))
			if err != nil {
				log.Fatal(err)
			}
			base = sp
		}
		cfg := crystalnet.CampaignConfig{
			N: *n, Seed: *seed, FaultsPerRun: *faults, Workers: *workers, Reuse: *reuse,
		}
		rep, err := crystalnet.ChaosCampaign(base, cfg)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(rep.JSON())
		fmt.Fprintf(os.Stderr, "%s: %d/%d runs passed\n", rep.Scenario, rep.Passed, rep.Passed+rep.Failed)
		if rep.Failed > 0 {
			os.Exit(1)
		}
		return
	}

	var spec crystalnet.ClosSpec
	switch *dc {
	case "sdc":
		spec = crystalnet.SDC()
	case "mdc":
		spec = crystalnet.MDC()
	case "ldc":
		spec = topo.LDCScaled(*ldcScale)
	default:
		log.Fatalf("unknown -dc %q", *dc)
	}
	network := crystalnet.GenerateClos(spec)
	topo.AttachWAN(network, spec, 2)

	var mustList []string
	if *must != "" {
		mustList = strings.Split(*must, ",")
	}
	o := crystalnet.New(crystalnet.Options{Seed: *seed, VMCount: *vms})
	prep, err := o.Prepare(crystalnet.PrepareInput{Network: network, MustEmulate: mustList})
	if err != nil {
		log.Fatal(err)
	}
	scale := prep.Plan.Scale()
	fmt.Printf("%s: %d devices, boundary %d, speakers %d, %d VMs",
		spec.Name, scale.TotalEmulated, scale.Boundary, scale.Speakers, len(prep.VMs()))
	if prep.SafetyErr != nil {
		fmt.Printf(" — UNSAFE: %v\n", prep.SafetyErr)
	} else {
		fmt.Printf(" — boundary safe\n")
	}

	if cmd == "plan" {
		fmt.Printf("internal: %s\n", strings.Join(prep.Plan.Internal, " "))
		fmt.Printf("boundary: %s\n", strings.Join(prep.Plan.Boundary, " "))
		fmt.Printf("speakers: %s\n", strings.Join(prep.Plan.Speakers, " "))
		return
	}

	em, err := o.Mockup(prep, false)
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := em.RunUntilConverged(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mockup: network-ready %s, route-ready %s, total %s (virtual), $%.2f/h\n",
		metrics.NetworkReady.Round(time.Second), metrics.RouteReady.Round(time.Second),
		metrics.Mockup.Round(time.Second), o.Cloud.HourlyCostUSD())

	switch cmd {
	case "mockup":
		var running, established, fibTotal int
		for _, st := range em.PullStates() {
			if st.State == crystalnet.DeviceRunning {
				running++
			}
			established += st.Established
			fibTotal += st.FIBLen
		}
		fmt.Printf("devices running: %d/%d, BGP sessions established: %d, total FIB entries: %d\n",
			running, len(em.Devices), established/2, fibTotal)
	case "fibs":
		need(flag.NArg() >= 2, "fibs <device>")
		snap, ok := em.PullFIBs()[flag.Arg(1)]
		if !ok {
			log.Fatalf("no device %q", flag.Arg(1))
		}
		fmt.Print(snap.String())
	case "exec":
		need(flag.NArg() >= 3, "exec <device> <command>")
		s, err := em.Login(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		out, err := s.Exec(strings.Join(flag.Args()[2:], " "))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	case "trace":
		need(flag.NArg() >= 3, "trace <device> <ip>")
		from := flag.Arg(1)
		dev, ok := em.Devices[from]
		if !ok {
			log.Fatalf("no device %q", from)
		}
		if _, err := em.InjectPackets(from, crystalnet.PacketMeta{
			Src: dev.Config().Loopback.Addr, Dst: crystalnet.MustParseIP(flag.Arg(2)),
			Proto: crystalnet.ProtoUDP, SrcPort: 33434, DstPort: 33434, TTL: 32,
		}, 1, time.Millisecond); err != nil {
			log.Fatal(err)
		}
		em.RunUntilConverged(0)
		for _, p := range crystalnet.ComputePaths(em.PullPackets()) {
			fmt.Printf("%s (delivered: %v)\n", p, p.Delivered)
		}
	default:
		log.Fatalf("unknown command %q", cmd)
	}

	em.Clear(nil)
	o.Eng.Run(0)
	o.Destroy(prep)
}

// defaultChaosBase is the campaign base when no spec file is given: the
// full sdc fabric under the continuous no-blackhole invariant, with one
// convergence point before the fault sequence starts.
func defaultChaosBase() *crystalnet.Scenario {
	return &crystalnet.Scenario{
		Name:        "chaos-sdc",
		Description: "chaos campaign base: sdc fabric, no-blackhole invariant",
		Seed:        1,
		Topology:    scenario.Topology{DC: "sdc", WANPerGroup: 2},
		Invariants:  []crystalnet.ScenarioStep{{Op: scenario.OpAssertNoBlackhole}},
		Steps:       []crystalnet.ScenarioStep{{Op: scenario.OpWaitConverge}},
	}
}

func need(ok bool, usage string) {
	if !ok {
		log.Fatalf("usage: crystalctl %s", usage)
	}
}
