// Command crystalctl is the operator CLI for CrystalNet: it prepares and
// mocks up an emulation of one of the evaluation fabrics (or a safe
// boundary within one) and runs a validation action against it — the
// command-line face of the paper's Table 2 API plus the declarative
// scenario engine.
//
// Usage:
//
//	crystalctl [flags] <command> [args]
//
// Commands:
//
//	plan [-solve d1,d2,...]   compute and print the safe boundary (no emulation);
//	                          -solve searches for the cheapest certified-safe
//	                          emulated set containing the targets and prints a
//	                          ranked Table-4-style report
//	mockup                    mock up, converge, print metrics and a state summary
//	fibs <device>             mock up and dump a device's forwarding table
//	exec <device> <cmd>       mock up and run a CLI command over the mgmt plane
//	trace [-out FILE] [<device> <ip>]
//	                          mock up under the Monitor-plane tracer; optionally
//	                          inject a probe; write a Perfetto-loadable trace
//	traffic [-flows N] [-json]
//	                          mock up, attach a flow-level traffic matrix
//	                          (docs/TRAFFIC.md), settle it against the converged
//	                          FIBs and print per-class delivery accounting
//	run-scenario <file.json>  execute a rehearsal spec, print its JSON report
//	chaos [file.json]         run a chaos campaign from a base spec (default: sdc)
//	rehearse -server ADDR <file.json>
//	                          submit a spec to a crystald daemon; the response
//	                          is byte-identical to run-scenario's report
//
// run-scenario and chaos build their fabric from the spec file; the
// topology flags (-dc, -ldcscale, -must, -vms) apply to the other commands.
//
// Observability (docs/OBSERVABILITY.md): -trace FILE writes a Chrome
// trace_event file of the run (open in Perfetto), -tracejson FILE the raw
// span/metric JSON, and -obs prints a text summary to stderr. All three
// work with every emulating command; chaos writes one trace-viewer process
// per campaign run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"crystalnet"
	"crystalnet/internal/bgp"
	"crystalnet/internal/boundary"
	"crystalnet/internal/scenario"
	"crystalnet/internal/topo"
	"crystalnet/internal/traffic"
)

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), `usage: crystalctl [flags] <command> [args]

Commands:
  plan [-solve d1,d2,...]   compute and print the safe boundary (no emulation);
                            -solve searches for the cheapest certified-safe
                            emulated set containing the targets (-alts, -json)
  mockup                    mock up, converge, print metrics and a state summary
  fibs <device>             mock up and dump a device's forwarding table
  exec <device> <command>   mock up and run a CLI command over the mgmt plane
  trace [-out FILE] [<device> <ip>]
                            mock up under the Monitor-plane tracer, optionally
                            inject a probe packet, and write a Chrome trace
                            file that opens in Perfetto (ui.perfetto.dev)
  traffic [-flows N] [-json]
                            mock up, attach a flow-level traffic matrix and
                            settle it against the converged FIBs; prints
                            per-class delivery/loss/black-hole accounting
                            (docs/TRAFFIC.md)
  run-scenario <file.json>  execute a rehearsal spec, print its JSON report
                            (exits 1 if the scenario fails)
  rehearse -server ADDR <file.json>
                            submit a rehearsal spec to a running crystald
                            daemon (cmd/crystald); prints the same report
                            bytes run-scenario would, exits 1 on failure
  chaos [file.json]         expand a base spec into -n seeded fault sequences
                            and run them on -workers cores (default base: the
                            sdc fabric with the no-blackhole invariant)

run-scenario and chaos take their fabric from the spec file; -dc, -ldcscale,
-must and -vms apply to the other commands. -trace/-tracejson/-obs attach
the Monitor-plane tracer to any emulating command (docs/OBSERVABILITY.md).

Flags:
`)
	flag.PrintDefaults()
}

// subUsage is the per-command usage text printed when a command's own
// arguments are wrong — the global flag dump would bury the one line the
// operator needs.
var subUsage = map[string]string{
	"plan": `crystalctl [flags] plan [-solve dev1,dev2,... [-alts N] [-json]]
  Compute and print the safe boundary without emulating. With -solve,
  search the candidate emulated sets containing the targets, certify
  each (Prop 5.2/5.3, Lemma 5.1 on small nets) and print the cheapest
  plus -alts ranked alternatives; the "spec emulate list" line pastes
  into a scenario spec's "emulate" field.`,
	"fibs": `crystalctl [flags] fibs <device>
  Mock up the fabric and dump <device>'s forwarding table.`,
	"exec": `crystalctl [flags] exec <device> <command...>
  Mock up the fabric and run a CLI command on <device> over the
  management plane (e.g. "show bgp"; vmb devices use "display").`,
	"trace": `crystalctl [flags] trace [-out FILE] [<device> <ip>]
  Mock up the fabric under the Monitor-plane tracer. With <device> <ip>,
  also inject a probe packet and print its reconstructed path. -out
  writes the Chrome trace_event file (open in Perfetto); the global
  -trace/-tracejson/-obs flags work here too.`,
	"traffic": `crystalctl [flags] traffic [-flows N] [-json]
  Mock up the fabric, attach a flow-level traffic matrix seeded from
  -seed, settle it against the converged FIBs and print per-class
  delivery accounting. -json prints the traffic.Report JSON instead.`,
	"run-scenario": `crystalctl [flags] run-scenario <file.json>
  Execute a rehearsal spec and print its JSON report. Exits 1 if the
  scenario fails.`,
	"rehearse": `crystalctl rehearse -server ADDR [-tenant NAME] <file.json>
  Submit a rehearsal spec to a running crystald daemon and print the
  returned JSON report (byte-identical to run-scenario's). Exits 1 if
  the scenario fails or the daemon refuses the request.`,
}

// need enforces a subcommand's argument shape, printing that command's own
// usage block on violation instead of the global one.
func need(cmd string, ok bool) {
	if ok {
		return
	}
	u, found := subUsage[cmd]
	if !found {
		u = "crystalctl [flags] " + cmd
	}
	fmt.Fprintf(os.Stderr, "usage: %s\n", u)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	dc := flag.String("dc", "sdc", "fabric: sdc, mdc or ldc")
	ldcScale := flag.Int("ldcscale", 8, "L-DC downscale divisor")
	must := flag.String("must", "", "comma-separated must-emulate devices (Algorithm 1 grows the boundary)")
	vms := flag.Int("vms", 0, "VM budget override")
	seed := flag.Int64("seed", 1, "simulation seed (run-scenario: overrides the spec's seed when set)")
	n := flag.Int("n", 20, "chaos: number of fault sequences")
	workers := flag.Int("workers", 0, "chaos: worker pool size (0 = all cores, 1 = serial)")
	faults := flag.Int("faults", 6, "chaos: fault events per sequence")
	reuse := flag.Bool("reuse", false, "chaos: converge the base fabric once and fork it per run")
	mtbf := flag.Duration("mtbf", 0, "arm seeded random VM failures with this mean time between failures (0 = off)")
	bootDeadline := flag.Duration("bootdeadline", 0, "supervise VM boots: per-attempt deadline before retry (0 = unsupervised)")
	maxAttempts := flag.Int("maxattempts", 0, "supervised boots: attempts before replacing the VM (0 = default 3)")
	recoveryDeadline := flag.Duration("recoverydeadline", 0, "abandon a VM-failure recovery into degraded mode after this long (0 = unbounded)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the command to `file`")
	traceOut := flag.String("trace", "", "write a Chrome trace_event file of the run to `file` (open in Perfetto)")
	traceJSON := flag.String("tracejson", "", "write the raw span/event/metric trace JSON to `file`")
	obsSummary := flag.Bool("obs", false, "print a Monitor-plane trace summary to stderr")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	// The rehearse subcommand is a pure HTTP client of crystald: no local
	// emulation, so it takes only its own flags and exits here.
	if cmd == "rehearse" {
		fs := flag.NewFlagSet("rehearse", flag.ExitOnError)
		server := fs.String("server", "", "crystald address (host:port or http:// URL)")
		tenant := fs.String("tenant", "", "tenant identity for the daemon's concurrency quotas")
		fs.Usage = func() { need("rehearse", false) }
		fs.Parse(args)
		args = fs.Args()
		need("rehearse", len(args) == 1 && *server != "")
		os.Exit(rehearseRemote(*server, *tenant, args[0]))
	}

	// The traffic subcommand takes its own flag set: crystalctl traffic
	// -flows 1000000 -json.
	trafficFlows := uint64(1_000_000)
	trafficJSON := false
	if cmd == "traffic" {
		fs := flag.NewFlagSet("traffic", flag.ExitOnError)
		flows := fs.Uint64("flows", 1_000_000, "modeled flow count")
		jsonOut := fs.Bool("json", false, "print the traffic report as JSON")
		fs.Usage = func() { need("traffic", false) }
		fs.Parse(args)
		args = fs.Args()
		need("traffic", len(args) == 0)
		trafficFlows, trafficJSON = *flows, *jsonOut
	}

	// The plan subcommand takes its own flag set: crystalctl plan
	// [-solve dev1,dev2 [-alts N] [-json]].
	planSolve, planAlts, planJSON := "", 3, false
	if cmd == "plan" {
		fs := flag.NewFlagSet("plan", flag.ExitOnError)
		solve := fs.String("solve", "", "comma-separated target devices: search for the cheapest certified-safe emulated set containing them")
		alts := fs.Int("alts", 3, "solve: near-optimal alternatives to rank below the winner")
		jsonOut := fs.Bool("json", false, "solve: print the solver result as JSON instead of the report table")
		fs.Usage = func() { need("plan", false) }
		fs.Parse(args)
		args = fs.Args()
		need("plan", len(args) == 0)
		planSolve, planAlts, planJSON = *solve, *alts, *jsonOut
	}

	// The trace subcommand takes its own flag set: crystalctl trace -out
	// mockup.trace [<device> <ip>].
	if cmd == "trace" {
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		out := fs.String("out", "", "write the Chrome trace_event file to `file`")
		fs.Usage = func() { need("trace", false) }
		fs.Parse(args)
		args = fs.Args()
		need("trace", len(args) == 0 || len(args) == 2)
		if *out != "" {
			*traceOut = *out
		}
	}

	// Validate the command and its argument shape before any (expensive)
	// emulation work, so a typo fails in milliseconds with the right usage
	// text.
	switch cmd {
	case "plan", "mockup", "trace", "chaos", "traffic":
	case "fibs":
		need(cmd, len(args) >= 1)
	case "exec":
		need(cmd, len(args) >= 2)
	case "run-scenario":
		need(cmd, len(args) >= 1)
	default:
		fmt.Fprintf(os.Stderr, "crystalctl: unknown command %q\n\n", cmd)
		flag.Usage()
		os.Exit(2)
	}

	// tracing reports whether any Monitor-plane output was requested; rec
	// is nil otherwise, which keeps the emulation on the untraced fast path.
	tracing := *traceOut != "" || *traceJSON != "" || *obsSummary
	var rec *crystalnet.Recorder
	if tracing {
		rec = crystalnet.NewRecorder()
	}

	// Failure-path knobs (DESIGN.md "Failure domains and recovery"). Boot
	// supervision engages only with a per-attempt deadline; -maxattempts
	// alone has nothing to bound.
	retry := crystalnet.RetryPolicy{}
	if *bootDeadline > 0 {
		retry = crystalnet.RetryPolicy{MaxAttempts: *maxAttempts, BootDeadline: *bootDeadline}
	} else if *maxAttempts > 0 {
		log.Fatal("-maxattempts requires -bootdeadline (supervision needs a per-attempt deadline)")
	}

	switch cmd {
	case "run-scenario":
		need(cmd, len(args) >= 1)
		sp, err := crystalnet.LoadScenario(args[0])
		if err != nil {
			log.Fatal(err)
		}
		opts := crystalnet.ScenarioOptions{
			Rec: rec, MTBF: *mtbf, Retry: retry, RecoveryDeadline: *recoveryDeadline,
		}
		if seedSet {
			opts.SeedOverride = seed
		}
		rep, err := crystalnet.RunScenario(sp, opts)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(rep.JSON())
		fmt.Fprintln(os.Stderr, rep.Summary())
		exportTrace(rec, *traceOut, *traceJSON, *obsSummary)
		if !rep.Passed {
			os.Exit(1)
		}
		return
	case "chaos":
		base := defaultChaosBase()
		if len(args) >= 1 {
			sp, err := crystalnet.LoadScenario(args[0])
			if err != nil {
				log.Fatal(err)
			}
			base = sp
		}
		cfg := crystalnet.CampaignConfig{
			N: *n, Seed: *seed, FaultsPerRun: *faults, Workers: *workers, Reuse: *reuse,
			Trace: tracing,
			MTBF:  *mtbf, Retry: retry, RecoveryDeadline: *recoveryDeadline,
		}
		rep, err := crystalnet.ChaosCampaign(base, cfg)
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(rep.JSON())
		fmt.Fprintf(os.Stderr, "%s: %d/%d runs passed\n", rep.Scenario, rep.Passed, rep.Passed+rep.Failed)
		exportCampaignTraces(rep, *traceOut, *traceJSON, *obsSummary)
		if rep.Failed > 0 {
			os.Exit(1)
		}
		return
	}

	var spec crystalnet.ClosSpec
	switch *dc {
	case "sdc":
		spec = crystalnet.SDC()
	case "mdc":
		spec = crystalnet.MDC()
	case "ldc":
		spec = topo.LDCScaled(*ldcScale)
	default:
		log.Fatalf("unknown -dc %q", *dc)
	}
	network := crystalnet.GenerateClos(spec)
	topo.AttachWAN(network, spec, 2)

	// plan -solve searches boundaries without preparing an emulation: no
	// orchestrator, no VMs — just the solver's ranked report.
	if cmd == "plan" && planSolve != "" {
		res, err := boundary.Solve(network, strings.Split(planSolve, ","), boundary.SolveOptions{
			Seed: *seed, MaxAlternatives: planAlts,
		})
		if err != nil {
			log.Fatal(err)
		}
		if planJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Print(res.Report())
		fmt.Printf("\nspec emulate list (best): %s\n", strings.Join(res.Best.Emulated, ","))
		return
	}

	var mustList []string
	if *must != "" {
		mustList = strings.Split(*must, ",")
	}
	o := crystalnet.New(crystalnet.Options{
		Seed: *seed, VMCount: *vms, Rec: rec,
		MTBF: *mtbf, Retry: retry, RecoveryDeadline: *recoveryDeadline,
	})
	prep, err := o.Prepare(crystalnet.PrepareInput{Network: network, MustEmulate: mustList})
	if err != nil {
		log.Fatal(err)
	}
	scale := prep.Plan.Scale()
	fmt.Printf("%s: %d devices, boundary %d, speakers %d, %d VMs",
		spec.Name, scale.TotalEmulated, scale.Boundary, scale.Speakers, len(prep.VMs()))
	if prep.SafetyErr != nil {
		fmt.Printf(" — UNSAFE: %v\n", prep.SafetyErr)
	} else {
		fmt.Printf(" — boundary safe\n")
	}

	if cmd == "plan" {
		fmt.Printf("internal: %s\n", strings.Join(prep.Plan.Internal, " "))
		fmt.Printf("boundary: %s\n", strings.Join(prep.Plan.Boundary, " "))
		fmt.Printf("speakers: %s\n", strings.Join(prep.Plan.Speakers, " "))
		return
	}

	em, err := o.Mockup(prep, false)
	if err != nil {
		log.Fatal(err)
	}
	metrics, err := em.RunUntilConverged(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mockup: network-ready %s, route-ready %s, total %s (virtual), $%.2f/h\n",
		metrics.NetworkReady.Round(time.Second), metrics.RouteReady.Round(time.Second),
		metrics.Mockup.Round(time.Second), o.Cloud.HourlyCostUSD())

	switch cmd {
	case "mockup":
		var running, fibTotal int
		for _, st := range em.PullStates() {
			if st.State == crystalnet.DeviceRunning {
				running++
			}
			fibTotal += st.FIBLen
		}
		full, half := sessionCounts(em)
		fmt.Printf("devices running: %d/%d, BGP sessions established: %d (half-open: %d), total FIB entries: %d\n",
			running, len(em.Devices), full, half, fibTotal)
	case "fibs":
		need(cmd, len(args) >= 1)
		snap, ok := em.PullFIBs()[args[0]]
		if !ok {
			log.Fatalf("no device %q", args[0])
		}
		fmt.Print(snap.String())
	case "exec":
		need(cmd, len(args) >= 2)
		s, err := em.Login(args[0])
		if err != nil {
			log.Fatal(err)
		}
		out, err := s.Exec(strings.Join(args[1:], " "))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	case "traffic":
		if err := em.AttachTraffic(traffic.Spec{Flows: trafficFlows, Seed: *seed}); err != nil {
			log.Fatal(err)
		}
		rep := em.Traffic().Report()
		if trafficJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				log.Fatal(err)
			}
			break
		}
		fmt.Printf("traffic: %d flows in %d aggregates settled\n", rep.Flows, rep.Aggregates)
		fmt.Printf("%-14s %12s %12s %12s %12s %10s\n",
			"class", "flows", "delivered", "blackholed", "lost", "avg-hops")
		for _, c := range rep.Classes {
			fmt.Printf("%-14s %12d %12d %12d %12d %10.2f\n",
				c.Class, c.Flows, c.Delivered, c.Blackholed, c.Lost, c.AvgPathHops)
		}
	case "trace":
		if len(args) == 2 {
			from := args[0]
			dev, ok := em.Devices[from]
			if !ok {
				log.Fatalf("no device %q", from)
			}
			if _, err := em.InjectPackets(from, crystalnet.PacketMeta{
				Src: dev.Config().Loopback.Addr, Dst: crystalnet.MustParseIP(args[1]),
				Proto: crystalnet.ProtoUDP, SrcPort: 33434, DstPort: 33434, TTL: 32,
			}, 1, time.Millisecond); err != nil {
				log.Fatal(err)
			}
			em.RunUntilConverged(0)
			for _, p := range crystalnet.ComputePaths(em.PullPackets()) {
				fmt.Printf("%s (delivered: %v)\n", p, p.Delivered)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	em.Clear(nil)
	o.Eng.Run(0)
	o.Destroy(prep)
	exportTrace(rec, *traceOut, *traceJSON, *obsSummary)
}

// sessionCounts pairs established BGP peerings by their unordered device
// endpoints: a session is fully established only when both sides report
// Established; an endpoint whose remote disagrees (mid-flap, cut link) is
// half-open. Summing per-device counters and halving — the old report —
// silently truncated those odd endpoints away.
func sessionCounts(em *crystalnet.Emulation) (full, half int) {
	pairs := map[[2]string]int{}
	for name, d := range em.Devices {
		r := d.BGP()
		if r == nil {
			continue
		}
		for _, p := range r.Peers() {
			if p.State() != bgp.StateEstablished {
				continue
			}
			key := [2]string{name, p.Config.Name}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			pairs[key]++
		}
	}
	for _, c := range pairs {
		full += c / 2
		half += c % 2
	}
	return full, half
}

// rehearseRemote submits a spec file to a crystald daemon's /v1/rehearse
// and relays the response: report bytes to stdout (they are the exact
// bytes run-scenario would print), summary to stderr. Returns the process
// exit code.
func rehearseRemote(server, tenant, specPath string) int {
	// Validate locally first so a typo fails without a round trip.
	if _, err := crystalnet.LoadScenario(specPath); err != nil {
		log.Print(err)
		return 1
	}
	data, err := os.ReadFile(specPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	base := server
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/rehearse", bytes.NewReader(data))
	if err != nil {
		log.Print(err)
		return 1
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Crystalnet-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Printf("rehearse: %v", err)
		return 1
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Printf("rehearse: read response: %v", err)
		return 1
	}
	if resp.StatusCode != http.StatusOK {
		log.Printf("rehearse: %s returned %s: %s", server, resp.Status, strings.TrimSpace(string(body)))
		return 1
	}
	os.Stdout.Write(body)
	var rep crystalnet.ScenarioReport
	if err := json.Unmarshal(body, &rep); err != nil {
		log.Printf("rehearse: parse report: %v", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "%s (request %s, pool %s)\n",
		rep.Summary(), resp.Header.Get("X-Crystalnet-Request"), resp.Header.Get("X-Crystalnet-Pool"))
	if !rep.Passed {
		return 1
	}
	return 0
}

// exportTrace writes one run's trace in the requested formats. A nil
// recorder (tracing off) writes nothing.
func exportTrace(rec *crystalnet.Recorder, chromePath, jsonPath string, summary bool) {
	if rec == nil {
		return
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if err := rec.WriteChrome(f); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "trace: wrote %s (open in ui.perfetto.dev)\n", chromePath)
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			log.Fatalf("-tracejson: %v", err)
		}
		if err := rec.WriteJSON(f); err != nil {
			log.Fatalf("-tracejson: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "trace: wrote %s\n", jsonPath)
	}
	if summary {
		fmt.Fprint(os.Stderr, rec.Summary())
	}
}

// exportCampaignTraces writes a chaos campaign's per-run traces: the Chrome
// file carries one trace-viewer process per run, so Perfetto shows the
// whole campaign side by side. -tracejson and -obs emit per-run sections.
func exportCampaignTraces(rep *crystalnet.CampaignReport, chromePath, jsonPath string, summary bool) {
	if len(rep.Traces) == 0 {
		return
	}
	if chromePath != "" {
		parts := make([]crystalnet.TracePart, len(rep.Traces))
		for i, r := range rep.Traces {
			parts[i] = crystalnet.TracePart{Name: rep.Runs[i].Scenario, Rec: r}
		}
		f, err := os.Create(chromePath)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		if err := crystalnet.WriteChromeTrace(f, parts...); err != nil {
			log.Fatalf("-trace: %v", err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d runs; open in ui.perfetto.dev)\n", chromePath, len(rep.Traces))
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			log.Fatalf("-tracejson: %v", err)
		}
		for _, r := range rep.Traces {
			if err := r.WriteJSON(f); err != nil {
				log.Fatalf("-tracejson: %v", err)
			}
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "trace: wrote %s (%d runs, concatenated)\n", jsonPath, len(rep.Traces))
	}
	if summary {
		for i, r := range rep.Traces {
			fmt.Fprintf(os.Stderr, "--- %s ---\n%s", rep.Runs[i].Scenario, r.Summary())
		}
	}
}

// defaultChaosBase is the campaign base when no spec file is given: the
// full sdc fabric under the continuous no-blackhole invariant, with one
// convergence point before the fault sequence starts.
func defaultChaosBase() *crystalnet.Scenario {
	return &crystalnet.Scenario{
		Name:        "chaos-sdc",
		Description: "chaos campaign base: sdc fabric, no-blackhole invariant",
		Seed:        1,
		Topology:    scenario.Topology{DC: "sdc", WANPerGroup: 2},
		Invariants:  []crystalnet.ScenarioStep{{Op: scenario.OpAssertNoBlackhole}},
		Steps:       []crystalnet.ScenarioStep{{Op: scenario.OpWaitConverge}},
	}
}
