// Command crystalload load-tests a running crystald daemon: it measures
// one cold rehearsal (empty pool, pays the convergence), then fires N
// concurrent requests at the warm pool and reports latency quantiles,
// the pool hit rate and the warm-vs-cold speedup as JSON on stdout.
//
//	crystalload -server 127.0.0.1:9310 -spec scenarios/rehearse_smoke.json -n 16 -c 4
//
// scripts/loadtest.sh drives it end to end (boot crystald, load, drain)
// and merges the result into BENCH_<date>.json via benchjson -loadtest.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// result is the JSON document crystalload prints.
type result struct {
	Server      string `json:"server"`
	Spec        string `json:"spec"`
	Requests    int    `json:"requests"`
	Concurrency int    `json:"concurrency"`
	// ColdMS is the first request's latency against an empty pool — it
	// pays the full convergence.
	ColdMS float64 `json:"cold_ms"`
	// WarmMS is one serial request after the concurrent phase: the pool's
	// per-request latency free of client-side contention.
	WarmMS float64 `json:"warm_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	// Hits/Misses/Bypasses count the X-Crystalnet-Pool header values over
	// the warm phase.
	Hits     int     `json:"hits"`
	Misses   int     `json:"misses"`
	Bypasses int     `json:"bypasses"`
	HitRate  float64 `json:"hit_rate"`
	// SpeedupP50 is ColdMS / P50MS under concurrency; SpeedupWarm is
	// ColdMS / WarmMS — what the warm pool buys a single request.
	SpeedupP50  float64 `json:"speedup_p50"`
	SpeedupWarm float64 `json:"speedup_warm"`
	Failures    int     `json:"failures"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("crystalload: ")
	server := flag.String("server", "127.0.0.1:9310", "crystald address (host:port or http:// URL)")
	specPath := flag.String("spec", "scenarios/loadtest_fabric.json", "rehearsal spec to fire")
	n := flag.Int("n", 16, "warm-phase request count")
	c := flag.Int("c", 4, "concurrent in-flight requests")
	tenant := flag.String("tenant", "loadtest", "tenant header value")
	flag.Parse()

	spec, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	base := *server
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	url := base + "/v1/rehearse"

	fire := func() (time.Duration, string, error) {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(spec))
		if err != nil {
			return 0, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Crystalnet-Tenant", *tenant)
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, "", err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		elapsed := time.Since(start)
		if rerr != nil {
			return elapsed, "", rerr
		}
		if resp.StatusCode != http.StatusOK {
			return elapsed, "", fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(body)))
		}
		return elapsed, resp.Header.Get("X-Crystalnet-Pool"), nil
	}

	res := result{Server: *server, Spec: *specPath, Requests: *n, Concurrency: *c}

	// Cold phase: one request against the empty pool pays the convergence.
	cold, mode, err := fire()
	if err != nil {
		log.Fatalf("cold request: %v", err)
	}
	if mode == "hit" {
		log.Print("warning: cold request hit a warm pool (daemon not fresh?); cold_ms underestimates convergence")
	}
	res.ColdMS = float64(cold) / float64(time.Millisecond)

	// Warm phase: N requests, C at a time.
	type sample struct {
		d    time.Duration
		mode string
		err  error
	}
	samples := make([]sample, *n)
	sem := make(chan struct{}, *c)
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			d, m, err := fire()
			samples[i] = sample{d, m, err}
		}(i)
	}
	wg.Wait()

	var durs []float64
	var sum float64
	for i, s := range samples {
		if s.err != nil {
			log.Printf("request %d: %v", i, s.err)
			res.Failures++
			continue
		}
		ms := float64(s.d) / float64(time.Millisecond)
		durs = append(durs, ms)
		sum += ms
		switch s.mode {
		case "hit":
			res.Hits++
		case "miss":
			res.Misses++
		default:
			res.Bypasses++
		}
	}
	if len(durs) > 0 {
		sort.Float64s(durs)
		res.P50MS = quantile(durs, 0.50)
		res.P90MS = quantile(durs, 0.90)
		res.P99MS = quantile(durs, 0.99)
		res.MeanMS = sum / float64(len(durs))
		res.HitRate = float64(res.Hits) / float64(len(durs))
		if res.P50MS > 0 {
			res.SpeedupP50 = res.ColdMS / res.P50MS
		}
	}

	// Serial warm probe: one request with no competing clients.
	warm, _, err := fire()
	if err != nil {
		log.Fatalf("warm probe: %v", err)
	}
	res.WarmMS = float64(warm) / float64(time.Millisecond)
	if res.WarmMS > 0 {
		res.SpeedupWarm = res.ColdMS / res.WarmMS
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"crystalload: %d requests (c=%d): cold %.0fms, warm %.0fms, p50 %.0fms, p99 %.0fms, hit rate %.0f%%, warm speedup %.1fx, %d failures\n",
		*n, *c, res.ColdMS, res.WarmMS, res.P50MS, res.P99MS, 100*res.HitRate, res.SpeedupWarm, res.Failures)
	if res.Failures > 0 {
		os.Exit(1)
	}
}

// quantile reads the q-th quantile from sorted samples (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
