// Command crystalbench regenerates every table and figure of the paper's
// evaluation and prints them in the paper's format. See EXPERIMENTS.md for
// the paper-vs-measured record.
//
// Usage:
//
//	crystalbench [-reps N] [-ldcscale N] [-quick] [-workers N]
//	             [-only table1,figure8,...] [-scale sdc|mdc|ldcdiv] [-shards N]
//	             [-traffic N] [-nobaseline] [-json] [-trace FILE]
//	             [-memstats FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// -quick runs a reduced sweep (fewer repetitions, no M-DC/L-DC in the
// latency figures). -ldcscale divides L-DC's pod count; 1 attempts the full
// 4636-device fabric (needs tens of GB of RAM). -workers bounds the worker
// pool that fans independent emulation runs across cores (0 = GOMAXPROCS).
// -json emits the raw experiment structs as one JSON object instead of the
// formatted tables.
//
// -scale runs the DESIGN.md §10 scale benchmark on one fabric (sdc, mdc, or
// ldcdiv — L-DC at the -ldcscale divisor): wall-clock to route-ready, peak
// and live heap, allocation volume and peak RSS, for an interned pass and a
// non-interned baseline pass (-nobaseline skips the latter). -shards
// additionally runs it with sharded convergence at that worker count.
// -memstats writes the process's closing runtime.MemStats
// (HeapAlloc/TotalAlloc/HeapSys/NumGC) as JSON for benchjson -memstats to
// embed.
//
// -traffic N runs the traffic-plane benchmark (docs/TRAFFIC.md): converge
// the -scale fabric (default sdc), attach an N-flow matrix and time
// re-settles, reporting flows-settled/s. benchjson -traffic embeds the
// -json form.
//
// -cpuprofile / -memprofile write pprof profiles covering
// the selected experiments, so perf work is reproducible without editing
// code:
//
//	crystalbench -only figure8 -quick -cpuprofile cpu.prof
//	go tool pprof -top cpu.prof
//
// -trace FILE runs one Monitor-plane-traced S-DC mockup/converge/clear
// cycle (on top of whatever experiments were selected) and writes a Chrome
// trace_event file that opens in Perfetto — the quickest way to see the
// phase timeline of docs/OBSERVABILITY.md on a real fabric.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"crystalnet"
	"crystalnet/internal/experiments"
	"crystalnet/internal/topo"
)

// tracedMockup runs one S-DC mockup/converge/clear cycle under the
// Monitor-plane tracer and writes the Chrome trace_event file to path.
func tracedMockup(path string) error {
	rec := crystalnet.NewRecorder()
	spec := crystalnet.SDC()
	network := crystalnet.GenerateClos(spec)
	topo.AttachWAN(network, spec, 2)
	o := crystalnet.New(crystalnet.Options{Seed: 1, Rec: rec})
	prep, err := o.Prepare(crystalnet.PrepareInput{Network: network})
	if err != nil {
		return err
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		return err
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		return err
	}
	em.Clear(nil)
	o.Eng.Run(0)
	o.Destroy(prep)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.WriteChrome(f)
}

func main() {
	reps := flag.Int("reps", 5, "repetitions per Figure 8 configuration (paper: 10)")
	ldcScale := flag.Int("ldcscale", 8, "L-DC downscale divisor (1 = full fabric)")
	quick := flag.Bool("quick", false, "reduced sweep: S-DC only, 2 reps")
	workers := flag.Int("workers", 0, "worker pool size for independent emulation runs (0 = GOMAXPROCS)")
	only := flag.String("only", "", "comma-separated subset: table1,figure1,figure7,table3,figure8,figure9,sec83,table4,table4solve,sec9")
	jsonOut := flag.Bool("json", false, "emit raw experiment structs as JSON instead of formatted tables")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to `file`")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (taken after the runs) to `file`")
	traceOut := flag.String("trace", "", "run one traced S-DC mockup cycle and write a Chrome trace_event file to `file`")
	scale := flag.String("scale", "", "run the §10 scale benchmark on one fabric: sdc, mdc, or ldcdiv (L-DC at the -ldcscale divisor)")
	trafficFlows := flag.Uint64("traffic", 0, "run the traffic-plane benchmark with this many flows on the -scale fabric (default sdc); reports flows-settled/s")
	shards := flag.Int("shards", 0, "worker count for sharded convergence in -scale (0 = classic single engine)")
	noBaseline := flag.Bool("nobaseline", false, "skip the non-interned baseline pass in -scale (halves the wall-clock; for smoke tests)")
	memStats := flag.String("memstats", "", "write closing runtime.MemStats as JSON to `file` (for benchjson -memstats)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crystalbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "crystalbench: start CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	// -scale without -only runs just the scale benchmark: it exists to be a
	// bounded, single-fabric measurement (scripts/check.sh smokes M-DC with
	// it under a timeout).
	run := func(key string) bool {
		if (*scale != "" || *trafficFlows > 0) && len(want) == 0 {
			return false
		}
		return len(want) == 0 || want[key]
	}
	section := func(title string) { fmt.Printf("\n==== %s ====\n\n", title) }

	// With -json, collect every selected experiment's raw structs here and
	// emit a single object at the end.
	raw := map[string]any{}
	emit := func(key, title, formatted string, value any) {
		if *jsonOut {
			raw[key] = value
			return
		}
		section(title)
		fmt.Print(formatted)
	}

	if *scale != "" {
		var spec topo.ClosSpec
		switch *scale {
		case "sdc":
			spec = topo.SDC()
		case "mdc":
			spec = topo.MDC()
		case "ldcdiv":
			spec = topo.LDCScaled(*ldcScale)
		default:
			fmt.Fprintf(os.Stderr, "crystalbench: -scale must be sdc, mdc or ldcdiv (got %q)\n", *scale)
			os.Exit(1)
		}
		rs := experiments.Scale(experiments.ScaleConfig{Spec: spec, Shards: *shards, Baseline: !*noBaseline})
		emit("scale", fmt.Sprintf("§10 scale benchmark — %s wall-clock and memory (interned vs baseline)", spec.Name),
			experiments.FormatScale(rs), rs)
	}
	if *trafficFlows > 0 {
		// The traffic benchmark reuses -scale's fabric selection; without
		// -scale it measures S-DC, the fabric docs/TRAFFIC.md quotes.
		spec := topo.SDC()
		switch *scale {
		case "", "sdc":
		case "mdc":
			spec = topo.MDC()
		case "ldcdiv":
			spec = topo.LDCScaled(*ldcScale)
		}
		r := experiments.Traffic(experiments.TrafficConfig{
			Spec: spec, Flows: *trafficFlows, Shards: *shards,
		})
		emit("traffic", fmt.Sprintf("traffic-plane benchmark — %d flows re-settled on %s", r.Flows, spec.Name),
			experiments.FormatTraffic(r), r)
	}
	if run("table1") {
		rows := experiments.Table1()
		emit("table1", "Table 1 — incident root causes: emulation vs verification coverage",
			experiments.FormatTable1(rows), rows)
	}
	if run("figure1") {
		r := experiments.Figure1(200)
		emit("figure1", "Figure 1 — vendor-divergent IP aggregation: traffic imbalance at R8",
			experiments.FormatFigure1(r), r)
	}
	if run("figure7") {
		r := experiments.Figure7()
		emit("figure7", "Figure 7 — safe vs unsafe static boundaries",
			experiments.FormatFigure7(r), r)
	}
	if run("table3") {
		rows := experiments.Table3()
		emit("table3", "Table 3 — evaluation datacenter fabrics",
			experiments.FormatTable3(rows), rows)
	}
	if run("figure8") {
		cfg := experiments.Figure8Config{Reps: *reps, LDCScale: *ldcScale, Workers: *workers}
		if *quick {
			cfg.Reps, cfg.SkipMDC, cfg.SkipLDC = 2, true, true
		}
		points := experiments.Figure8(cfg)
		note := fmt.Sprintf("\n(virtual-time measurements on the simulated cloud; L-DC runs at 1/%d pod scale unless -ldcscale=1)\n", *ldcScale)
		emit("figure8", "Figure 8 — mockup / network-ready / route-ready / clear latencies",
			experiments.FormatFigure8(points)+note, points)
	}
	if run("figure9") {
		series := experiments.Figure9(*ldcScale, *quick, *workers)
		emit("figure9", "Figure 9 — p95 per-VM CPU utilization during Mockup (by minute)",
			experiments.FormatFigure9(series), series)
	}
	if run("sec83") {
		r := experiments.Sec83()
		emit("sec83", "§8.3 — reload latency (two-layer vs strawman) and VM recovery",
			experiments.FormatSec83(r), r)
	}
	if run("table4") {
		rows := experiments.Table4(*workers)
		emit("table4", "Table 4 — safe-boundary emulation scales in L-DC",
			experiments.FormatTable4(rows), rows)
	}
	if run("table4solve") {
		rows := experiments.Table4Solve(*workers)
		emit("table4solve", "Table 4 (generalized) — solver vs hand-picked boundaries in L-DC",
			experiments.FormatTable4Solve(rows), rows)
	}
	if run("sec9") {
		r := experiments.CrossValidate(*workers)
		emit("sec9", "§9 — FIB cross-validation: strict vs ECMP-aware comparator",
			experiments.FormatCrossValidate(r), r)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(raw); err != nil {
			fmt.Fprintf(os.Stderr, "crystalbench: -json: %v\n", err)
			os.Exit(1)
		}
	} else {
		fmt.Println()
	}

	if *traceOut != "" {
		if err := tracedMockup(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "crystalbench: -trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "crystalbench: wrote %s (open in ui.perfetto.dev)\n", *traceOut)
	}

	if *memStats != "" {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		stats := map[string]uint64{
			"heap_alloc":  m.HeapAlloc,
			"total_alloc": m.TotalAlloc,
			"heap_sys":    m.HeapSys,
			"num_gc":      uint64(m.NumGC),
		}
		f, err := os.Create(*memStats)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crystalbench: -memstats: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			fmt.Fprintf(os.Stderr, "crystalbench: -memstats: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crystalbench: -memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "crystalbench: write heap profile: %v\n", err)
			os.Exit(1)
		}
	}
}
