// Command crystalbench regenerates every table and figure of the paper's
// evaluation and prints them in the paper's format. See EXPERIMENTS.md for
// the paper-vs-measured record.
//
// Usage:
//
//	crystalbench [-reps N] [-ldcscale N] [-quick] [-only table1,figure8,...]
//
// -quick runs a reduced sweep (fewer repetitions, no M-DC/L-DC in the
// latency figures). -ldcscale divides L-DC's pod count; 1 attempts the full
// 4636-device fabric (needs tens of GB of RAM).
package main

import (
	"flag"
	"fmt"
	"strings"

	"crystalnet/internal/experiments"
)

func main() {
	reps := flag.Int("reps", 5, "repetitions per Figure 8 configuration (paper: 10)")
	ldcScale := flag.Int("ldcscale", 8, "L-DC downscale divisor (1 = full fabric)")
	quick := flag.Bool("quick", false, "reduced sweep: S-DC only, 2 reps")
	only := flag.String("only", "", "comma-separated subset: table1,figure1,figure7,table3,figure8,figure9,sec83,table4")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }
	section := func(title string) { fmt.Printf("\n==== %s ====\n\n", title) }

	if run("table1") {
		section("Table 1 — incident root causes: emulation vs verification coverage")
		fmt.Print(experiments.FormatTable1(experiments.Table1()))
	}
	if run("figure1") {
		section("Figure 1 — vendor-divergent IP aggregation: traffic imbalance at R8")
		fmt.Print(experiments.FormatFigure1(experiments.Figure1(200)))
	}
	if run("figure7") {
		section("Figure 7 — safe vs unsafe static boundaries")
		fmt.Print(experiments.FormatFigure7(experiments.Figure7()))
	}
	if run("table3") {
		section("Table 3 — evaluation datacenter fabrics")
		fmt.Print(experiments.FormatTable3(experiments.Table3()))
	}
	if run("figure8") {
		section("Figure 8 — mockup / network-ready / route-ready / clear latencies")
		cfg := experiments.Figure8Config{Reps: *reps, LDCScale: *ldcScale}
		if *quick {
			cfg.Reps, cfg.SkipMDC, cfg.SkipLDC = 2, true, true
		}
		fmt.Print(experiments.FormatFigure8(experiments.Figure8(cfg)))
		fmt.Println("\n(virtual-time measurements on the simulated cloud; L-DC runs at 1/",
			*ldcScale, "pod scale unless -ldcscale=1)")
	}
	if run("figure9") {
		section("Figure 9 — p95 per-VM CPU utilization during Mockup (by minute)")
		fmt.Print(experiments.FormatFigure9(experiments.Figure9(*ldcScale, *quick)))
	}
	if run("sec83") {
		section("§8.3 — reload latency (two-layer vs strawman) and VM recovery")
		fmt.Print(experiments.FormatSec83(experiments.Sec83()))
	}
	if run("table4") {
		section("Table 4 — safe-boundary emulation scales in L-DC")
		fmt.Print(experiments.FormatTable4(experiments.Table4()))
	}
	if run("sec9") {
		section("§9 — FIB cross-validation: strict vs ECMP-aware comparator")
		fmt.Print(experiments.FormatCrossValidate(experiments.CrossValidate()))
	}
	fmt.Println()
}
